// Tests for the pluggable PUF backend subsystem (src/backend): the
// backend registry, the max-flow wrapper's bit-for-bit equivalence with
// the direct SimulationModel path, the PDL delay-PUF implementation, the
// backend-tagged persistence formats (including pre-tag backward
// compatibility), and the paper's Fig. 10 learnability comparison run
// against BOTH backends through the real network path.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "attack/harness.hpp"
#include "backend/backend.hpp"
#include "backend/maxflow_backend.hpp"
#include "backend/pdl_backend.hpp"
#include "net/client.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/codec.hpp"
#include "puf/arbiter.hpp"
#include "registry/device_registry.hpp"
#include "registry/hydration_cache.hpp"
#include "registry/record.hpp"
#include "server/auth_server.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ppuf {
namespace {

namespace fs = std::filesystem;
using backend::BackendKind;
using protocol::codec::Reader;
using protocol::codec::Writer;
using util::Status;
using util::StatusCode;

std::string fresh_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

// ------------------------------------------------------- backend registry

TEST(Backend, LookupByKindAndNameRejectsUnknown) {
  const backend::PufBackend* mf = backend::find_backend(BackendKind::kMaxFlow);
  const backend::PufBackend* pdl =
      backend::find_backend(BackendKind::kPdlDelay);
  ASSERT_NE(mf, nullptr);
  ASSERT_NE(pdl, nullptr);
  EXPECT_EQ(mf->kind(), BackendKind::kMaxFlow);
  EXPECT_EQ(pdl->kind(), BackendKind::kPdlDelay);
  EXPECT_STREQ(mf->name(), "maxflow");
  EXPECT_STREQ(pdl->name(), "pdl");
  // Lookups are stateless singletons: the same pointer every time.
  EXPECT_EQ(mf, backend::find_backend(std::string("maxflow")));
  EXPECT_EQ(pdl, backend::find_backend(std::string("pdl")));
  // 0 is reserved; unknown kinds and names resolve to null, never a
  // default backend.
  EXPECT_EQ(backend::find_backend(static_cast<BackendKind>(0)), nullptr);
  EXPECT_EQ(backend::find_backend(static_cast<BackendKind>(0x7f)), nullptr);
  EXPECT_EQ(backend::find_backend(std::string("flux-capacitor")), nullptr);

  EXPECT_STREQ(backend::backend_name(BackendKind::kMaxFlow), "maxflow");
  EXPECT_STREQ(backend::backend_name(BackendKind::kPdlDelay), "pdl");
  EXPECT_STREQ(backend::backend_name(static_cast<BackendKind>(9)),
               "unknown");
  BackendKind parsed;
  EXPECT_TRUE(backend::parse_backend("maxflow", &parsed));
  EXPECT_EQ(parsed, BackendKind::kMaxFlow);
  EXPECT_TRUE(backend::parse_backend("pdl", &parsed));
  EXPECT_EQ(parsed, BackendKind::kPdlDelay);
  EXPECT_FALSE(backend::parse_backend("PDL", &parsed));
  EXPECT_FALSE(backend::parse_backend("", &parsed));
}

// -------------------------------------------------- max-flow equivalence

TEST(Backend, MaxFlowDeviceMatchesDirectModelBitForBit) {
  // The backend wrapper must be the pre-backend serving path exactly:
  // same fabrication, same blob, same predictions to the last bit of the
  // flow doubles.
  PpufParams params;
  params.node_count = 12;
  params.grid_size = 4;
  constexpr std::uint64_t kSeed = 2025;

  const backend::PufBackend* mf = backend::find_backend(BackendKind::kMaxFlow);
  backend::FabricateRequest req;
  req.node_count = params.node_count;
  req.grid_size = params.grid_size;
  req.seed = kSeed;
  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(mf->fabricate(req, nullptr, &blob).is_ok());

  // The blob is the canonical sim-model encoding of the directly
  // fabricated instance.
  MaxFlowPpuf puf(params, kSeed);
  SimulationModel direct(puf);
  Writer w;
  protocol::codec::encode_sim_model(w, direct);
  EXPECT_EQ(blob, w.bytes());
  ASSERT_TRUE(
      mf->validate_model(blob.data(), blob.size(), params.node_count,
                         params.grid_size)
          .is_ok());
  EXPECT_EQ(mf->validate_model(blob.data(), blob.size(),
                               params.node_count + 1, params.grid_size)
                .code(),
            StatusCode::kInvalidArgument);

  std::unique_ptr<backend::Device> dev;
  ASSERT_TRUE(mf->materialize(blob, {}, &dev).is_ok());
  EXPECT_EQ(dev->kind(), BackendKind::kMaxFlow);
  EXPECT_TRUE(dev->asymmetric_verify());
  ASSERT_NE(dev->sim_model(), nullptr);

  util::Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    const Challenge c = random_challenge(direct.layout(), rng);
    const auto got = dev->predict(c, {});
    const auto want = direct.predict(c);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.bit, want.bit);
    EXPECT_EQ(got.flow_a, want.flow_a);
    EXPECT_EQ(got.flow_b, want.flow_b);
  }
}

// ------------------------------------------------- tagged record formats

registry::DeviceEntry pdl_entry(std::uint64_t id, std::uint64_t seed) {
  registry::DeviceEntry e;
  e.id = id;
  e.nodes = 16;
  e.grid = 2;
  e.label = "pdl";
  e.backend = BackendKind::kPdlDelay;
  backend::FabricateRequest req;
  req.node_count = e.nodes;
  req.grid_size = e.grid;
  req.seed = seed;
  EXPECT_TRUE(backend::find_backend(BackendKind::kPdlDelay)
                  ->fabricate(req, nullptr, &e.model_bytes)
                  .is_ok());
  return e;
}

TEST(Backend, UnknownBackendTagsInRecordsAreTypedErrors) {
  registry::WalRecord rec;
  rec.type = registry::WalRecord::Type::kEnrollTagged;
  rec.entry = pdl_entry(9, 77);
  Writer w;
  registry::encode_wal_record(w, rec);
  std::vector<std::uint8_t> body = w.bytes();
  // Body layout: u8 type | u8 backend | entry.  Forge the tag.
  ASSERT_GE(body.size(), 2u);
  body[1] = 0x7f;
  {
    Reader r(body.data(), body.size());
    registry::WalRecord out;
    const Status s = registry::decode_wal_record(r, &out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
  body[1] = 0;  // the reserved value is rejected too
  {
    Reader r(body.data(), body.size());
    registry::WalRecord out;
    EXPECT_EQ(registry::decode_wal_record(r, &out).code(),
              StatusCode::kInvalidArgument);
  }

  // Same for a v2 snapshot: each entry's leading tag byte must resolve.
  registry::SnapshotBody snap;
  snap.next_id = 10;
  snap.entries = {pdl_entry(9, 77)};
  Writer sw;
  registry::encode_snapshot_body(sw, snap, 2);
  std::vector<std::uint8_t> sbody = sw.bytes();
  // Snapshot body: u64 next_id | u32 count | (u8 tag | entry)*.
  ASSERT_GE(sbody.size(), 13u);
  sbody[12] = 0x7f;
  Reader r(sbody.data(), sbody.size());
  registry::SnapshotBody out;
  EXPECT_EQ(registry::decode_snapshot_body(r, &out, 2).code(),
            StatusCode::kInvalidArgument);

  // And the registry refuses to enroll a kind it cannot resolve.
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(fresh_dir("backend_unknown_enroll")).is_ok());
  registry::EnrollRequest enroll;
  enroll.node_count = 8;
  enroll.grid_size = 2;
  enroll.seed = 1;
  enroll.backend = static_cast<BackendKind>(0x7f);
  std::uint64_t id = 0;
  EXPECT_EQ(reg.enroll(enroll, &id).code(), StatusCode::kInvalidArgument);
}

TEST(Backend, PreTagWalAndSnapshotRecoverAsMaxFlowBitForBit) {
  // Backward compatibility is byte-level: a max-flow-only fleet writes
  // the EXACT pre-tag formats (WAL type kEnroll, snapshot magic
  // "ppufreg1"), and recovery from those bytes serves predictions
  // bit-identical to direct fabrication — the same invariant the golden
  // corpus pins for the underlying model.
  PpufParams params;
  params.node_count = 10;
  params.grid_size = 4;
  constexpr std::uint64_t kSeed = 4242;
  const std::string dir = fresh_dir("backend_pretag");
  std::uint64_t id = 0;
  {
    registry::DeviceRegistry reg;
    ASSERT_TRUE(reg.open(dir).is_ok());
    registry::EnrollRequest req;
    req.node_count = params.node_count;
    req.grid_size = params.grid_size;
    req.seed = kSeed;
    req.label = "legacy";
    ASSERT_TRUE(reg.enroll(req, &id).is_ok());

    // The WAL record on disk is the untagged kEnroll form.
    const std::vector<std::uint8_t> wal = read_file(dir + "/wal.log");
    std::size_t consumed = 0;
    std::vector<std::uint8_t> body;
    std::string error;
    ASSERT_EQ(registry::extract_record(wal.data(), wal.size(), &consumed,
                                       &body, &error),
              registry::ExtractStatus::kOk)
        << error;
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body[0],
              static_cast<std::uint8_t>(registry::WalRecord::Type::kEnroll));

    // Compaction writes the v1 snapshot image.
    ASSERT_TRUE(reg.compact().is_ok());
    const std::vector<std::uint8_t> snap = read_file(dir + "/snapshot.bin");
    ASSERT_GE(snap.size(), 8u);
    EXPECT_EQ(std::string(snap.begin(), snap.begin() + 8), "ppufreg1");
  }

  // Cold recovery from those pre-tag bytes: the device comes back as
  // max-flow and predicts bit-identically to direct fabrication.
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  ASSERT_EQ(reg.device_count(), 1u);
  const auto listing = reg.list();
  ASSERT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0].backend, BackendKind::kMaxFlow);

  registry::HydrationCache cache(reg, {});
  std::shared_ptr<const registry::HydratedDevice> dev;
  ASSERT_TRUE(cache.get(id, &dev).is_ok());
  EXPECT_EQ(dev->device->kind(), BackendKind::kMaxFlow);

  MaxFlowPpuf puf(params, kSeed);
  SimulationModel direct(puf);
  util::Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    const Challenge c = random_challenge(direct.layout(), rng);
    const auto got = dev->device->predict(c, {});
    const auto want = direct.predict(c);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.bit, want.bit);
    EXPECT_EQ(got.flow_a, want.flow_a);
    EXPECT_EQ(got.flow_b, want.flow_b);
  }
}

TEST(Backend, MixedFleetSnapshotUsesV2AndRecoversBothKinds) {
  const std::string dir = fresh_dir("backend_mixed_snapshot");
  std::uint64_t mf_id = 0, pdl_id = 0;
  {
    registry::DeviceRegistry reg;
    ASSERT_TRUE(reg.open(dir).is_ok());
    registry::EnrollRequest mf;
    mf.node_count = 8;
    mf.grid_size = 3;
    mf.seed = 11;
    mf.label = "mf";
    ASSERT_TRUE(reg.enroll(mf, &mf_id).is_ok());
    registry::EnrollRequest pdl;
    pdl.backend = BackendKind::kPdlDelay;
    pdl.node_count = 16;  // stages
    pdl.grid_size = 2;    // instances
    pdl.seed = 12;
    pdl.label = "pdl";
    ASSERT_TRUE(reg.enroll(pdl, &pdl_id).is_ok());
    ASSERT_TRUE(reg.compact().is_ok());
    const std::vector<std::uint8_t> snap = read_file(dir + "/snapshot.bin");
    ASSERT_GE(snap.size(), 8u);
    EXPECT_EQ(std::string(snap.begin(), snap.begin() + 8), "ppufreg2");
  }
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  ASSERT_EQ(reg.device_count(), 2u);
  for (const auto& info : reg.list()) {
    EXPECT_EQ(info.backend, info.id == mf_id ? BackendKind::kMaxFlow
                                             : BackendKind::kPdlDelay);
  }
  // load_model stays a max-flow-only API with a typed refusal; the
  // backend-agnostic path is load_entry.
  SimulationModel model;
  EXPECT_TRUE(reg.load_model(mf_id, &model).is_ok());
  EXPECT_EQ(reg.load_model(pdl_id, &model).code(),
            StatusCode::kInvalidArgument);
  BackendKind kind;
  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(reg.load_entry(pdl_id, &kind, &blob).is_ok());
  EXPECT_EQ(kind, BackendKind::kPdlDelay);
  EXPECT_TRUE(backend::find_backend(kind)
                  ->validate_model(blob.data(), blob.size(), 16, 2)
                  .is_ok());

  // Both kinds hydrate side by side through the same cache.
  registry::HydrationCache cache(reg, {});
  std::shared_ptr<const registry::HydratedDevice> mf_dev, pdl_dev;
  ASSERT_TRUE(cache.get(mf_id, &mf_dev).is_ok());
  ASSERT_TRUE(cache.get(pdl_id, &pdl_dev).is_ok());
  EXPECT_EQ(mf_dev->device->kind(), BackendKind::kMaxFlow);
  EXPECT_EQ(pdl_dev->device->kind(), BackendKind::kPdlDelay);
  EXPECT_TRUE(mf_dev->device->asymmetric_verify());
  EXPECT_FALSE(pdl_dev->device->asymmetric_verify());
}

// ------------------------------------------------------- PDL delay PUF

TEST(PdlDelay, FabricationIsDeterministicAndRoundTrips) {
  const backend::PufBackend* pdl =
      backend::find_backend(BackendKind::kPdlDelay);
  backend::FabricateRequest req;
  req.node_count = 24;  // stages
  req.grid_size = 3;    // XORed instances
  req.seed = 99;
  std::vector<std::uint8_t> blob, blob2;
  ASSERT_TRUE(pdl->fabricate(req, nullptr, &blob).is_ok());
  ASSERT_TRUE(pdl->fabricate(req, nullptr, &blob2).is_ok());
  EXPECT_EQ(blob, blob2);  // the seed is the whole fabrication story
  ASSERT_TRUE(pdl->validate_model(blob.data(), blob.size(), 24, 3).is_ok());
  EXPECT_EQ(pdl->validate_model(blob.data(), blob.size(), 24, 4).code(),
            StatusCode::kInvalidArgument);

  std::unique_ptr<backend::Device> dev;
  ASSERT_TRUE(pdl->materialize(blob, {}, &dev).is_ok());
  EXPECT_EQ(dev->kind(), BackendKind::kPdlDelay);
  EXPECT_FALSE(dev->asymmetric_verify());
  EXPECT_EQ(dev->sim_model(), nullptr);

  // The device's answers are the XOR of the re-fabricated instances —
  // the shared helper the holder side (ppuf_tool auth) uses.
  const std::vector<puf::ArbiterPuf> silicon =
      backend::fabricate_pdl_instances(24, 3, 99);
  util::Rng rng(1);
  for (int i = 0; i < 32; ++i) {
    const Challenge c = dev->issue_challenge(rng);
    ASSERT_TRUE(dev->validate_challenge(c).is_ok());
    const auto p = dev->predict(c, {});
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.bit, backend::pdl_response(silicon, c.bits));
    EXPECT_EQ(p.flow_a, silicon[0].margin(c.bits));
  }

  // Challenge validation is typed: wrong terminals, wrong bit count,
  // non-binary bits.
  Challenge bad;
  bad.source = 2;
  bad.sink = 1;
  bad.bits.assign(24, 0);
  EXPECT_EQ(dev->validate_challenge(bad).code(),
            StatusCode::kInvalidArgument);
  bad.source = 0;
  bad.bits.assign(23, 0);
  EXPECT_EQ(dev->validate_challenge(bad).code(),
            StatusCode::kInvalidArgument);
  bad.bits.assign(24, 2);
  EXPECT_EQ(dev->validate_challenge(bad).code(),
            StatusCode::kInvalidArgument);
}

TEST(PdlDelay, BlobTruncationAndForgeryStayTypedErrors) {
  const backend::PufBackend* pdl =
      backend::find_backend(BackendKind::kPdlDelay);
  backend::FabricateRequest req;
  req.node_count = 8;
  req.grid_size = 2;
  req.seed = 5;
  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(pdl->fabricate(req, nullptr, &blob).is_ok());

  // Every strict prefix is a typed error — weights are fixed-width, so
  // there is no legal shorter form.
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_EQ(pdl->validate_model(blob.data(), len, 8, 2).code(),
              StatusCode::kInvalidArgument)
        << "prefix " << len;
  }
  // Trailing surplus is corruption too.
  std::vector<std::uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_EQ(pdl->validate_model(padded.data(), padded.size(), 8, 2).code(),
            StatusCode::kInvalidArgument);

  // A forged header demanding a huge allocation dies on the geometry
  // bounds before any weight is read.
  std::vector<std::uint8_t> forged = blob;
  forged[0] = 0xff;
  forged[1] = 0xff;
  forged[2] = 0xff;
  forged[3] = 0x7f;
  EXPECT_EQ(pdl->validate_model(forged.data(), forged.size(), 8, 2).code(),
            StatusCode::kInvalidArgument);

  // materialize() wraps decode failures as kInternal: a blob that passed
  // record validation but fails here means the store itself broke.
  std::unique_ptr<backend::Device> dev;
  EXPECT_EQ(pdl->materialize(padded, {}, &dev).code(),
            StatusCode::kInternal);
}

TEST(PdlDelay, ChainedAuthAcceptsHolderRejectsImpostorAndLateness) {
  const backend::PufBackend* pdl =
      backend::find_backend(BackendKind::kPdlDelay);
  backend::FabricateRequest req;
  req.node_count = 24;
  req.grid_size = 2;
  req.seed = 31;
  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(pdl->fabricate(req, nullptr, &blob).is_ok());
  backend::MaterializeOptions mopts;
  mopts.verifier_deadline_seconds = 1.0;
  std::unique_ptr<backend::Device> dev;
  ASSERT_TRUE(pdl->materialize(blob, mopts, &dev).is_ok());

  util::Rng rng(2);
  const Challenge first = dev->issue_challenge(rng);
  constexpr std::size_t kChain = 4;
  constexpr std::uint64_t kNonce = 0xabcdef;

  const std::vector<puf::ArbiterPuf> holder =
      backend::fabricate_pdl_instances(24, 2, 31);
  const protocol::ChainedReport honest =
      backend::prove_chain_with_pdl(holder, first, kChain, kNonce, 1e-6);
  util::Rng spot(9);
  auto verdict = dev->verify_chain(first, kChain, kNonce, honest,
                                   /*spot_checks=*/2, spot);
  EXPECT_TRUE(verdict.accepted) << verdict.detail;

  // An impostor device (different fabrication seed) diverges on margins.
  const std::vector<puf::ArbiterPuf> impostor =
      backend::fabricate_pdl_instances(24, 2, 32);
  const protocol::ChainedReport forged =
      backend::prove_chain_with_pdl(impostor, first, kChain, kNonce, 1e-6);
  verdict = dev->verify_chain(first, kChain, kNonce, forged, 2, spot);
  EXPECT_FALSE(verdict.accepted);

  // A delay PUF has NO time asymmetry, but lateness is still lateness.
  protocol::ChainedReport late = honest;
  late.elapsed_seconds = static_cast<double>(kChain) * 10.0;
  verdict = dev->verify_chain(first, kChain, kNonce, late, 2, spot);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_FALSE(verdict.in_time);
}

TEST(PdlDelay, BatchPredictHonoursPerItemDeadlines) {
  const backend::PufBackend* pdl =
      backend::find_backend(BackendKind::kPdlDelay);
  backend::FabricateRequest req;
  req.node_count = 16;
  req.grid_size = 1;
  req.seed = 13;
  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(pdl->fabricate(req, nullptr, &blob).is_ok());
  std::unique_ptr<backend::Device> dev;
  ASSERT_TRUE(pdl->materialize(blob, {}, &dev).is_ok());

  util::Rng rng(4);
  std::vector<Challenge> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(dev->issue_challenge(rng));
  SimulationModel::PredictBatchOptions options;
  options.deadlines.assign(batch.size(), util::Deadline());
  options.deadlines[2] = util::Deadline::after_seconds(0.0);  // expired
  const auto out = dev->predict_batch(batch, options);
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i == 2) {
      EXPECT_EQ(out[i].status.code(), StatusCode::kDeadlineExceeded);
    } else {
      EXPECT_TRUE(out[i].ok()) << i;
    }
  }
  // A mismatched deadlines vector is a caller bug, not data.
  options.deadlines.assign(batch.size() + 1, util::Deadline());
  EXPECT_THROW(dev->predict_batch(batch, options), std::invalid_argument);
}

// ------------------------------------------------ Fig. 10 over the wire
//
// The paper's comparison, run against the real serving stack: train the
// attack suite (LS-SVM, SMO, KNN — the harness reports the minimum
// error) on CRPs observed through AuthClient.predict for one device of
// each backend.  The PDL device is cloned to >95% accuracy from a few
// hundred CRPs; the max-flow device resists at the same budget.

TEST(PdlDelay, LearnableOverTheWireWhereMaxFlowResists) {
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(fresh_dir("backend_fig10")).is_ok());

  constexpr std::size_t kStages = 24;
  registry::EnrollRequest pdl_req;
  pdl_req.backend = BackendKind::kPdlDelay;
  pdl_req.node_count = kStages;
  pdl_req.grid_size = 1;  // single chain: the classic Fig. 10 baseline
  pdl_req.seed = 606;
  pdl_req.label = "fig10-pdl";
  std::uint64_t pdl_id = 0;
  ASSERT_TRUE(reg.enroll(pdl_req, &pdl_id).is_ok());

  PpufParams mf_params;
  mf_params.node_count = 10;
  mf_params.grid_size = 8;  // 64 type-B bits, like the paper's instance
  registry::EnrollRequest mf_req;
  mf_req.node_count = mf_params.node_count;
  mf_req.grid_size = mf_params.grid_size;
  mf_req.seed = 707;
  mf_req.label = "fig10-mf";
  std::uint64_t mf_id = 0;
  ASSERT_TRUE(reg.enroll(mf_req, &mf_id).is_ok());

  server::AuthServerOptions options;
  options.threads = 2;
  server::AuthServer srv(reg, options);
  ASSERT_TRUE(srv.start().is_ok());

  util::Rng rng(17);

  // --- PDL leg: CRPs over the wire, parity features (shared with the
  // backend via ArbiterPuf::parity_features — the strongest known
  // attack representation).
  {
    net::ClientOptions copt;
    copt.device_id = pdl_id;
    net::AuthClient client("127.0.0.1", srv.port(), copt);
    std::vector<std::vector<double>> feats;
    std::vector<int> responses;
    for (int i = 0; i < 720; ++i) {
      Challenge c;
      c.source = 0;
      c.sink = 1;
      c.bits.resize(kStages);
      for (std::uint8_t& b : c.bits) b = rng.coin() ? 1 : 0;
      SimulationModel::Prediction p;
      ASSERT_TRUE(client.predict(c, &p).is_ok());
      feats.push_back(puf::ArbiterPuf::parity_features(c.bits));
      responses.push_back(p.bit);
    }
    attack::Dataset all =
        attack::from_features(std::move(feats), std::move(responses));
    const attack::Dataset train = all.slice(0, 600);
    const attack::Dataset test = all.slice(600, 120);
    const auto curve =
        attack::attack_learning_curve(train, test, {100, 600});
    ASSERT_EQ(curve.size(), 2u);
    // >95% prediction accuracy with a modest CRP budget.
    EXPECT_LT(curve[1].best(), 0.05)
        << "lssvm=" << curve[1].lssvm_rbf << " smo=" << curve[1].smo_rbf
        << " knn=" << curve[1].knn;
  }

  // --- Max-flow leg: same attack suite, same observation channel, a
  // comparable budget — every attacker stays far from the PDL error.
  {
    net::ClientOptions copt;
    copt.device_id = mf_id;
    net::AuthClient client("127.0.0.1", srv.port(), copt);
    const CrossbarLayout layout(mf_params.node_count, mf_params.grid_size);
    std::vector<std::vector<std::uint8_t>> challenges;
    std::vector<int> responses;
    for (int i = 0; i < 260; ++i) {
      const Challenge c = random_challenge_fixed_ends(layout, 0, 5, rng);
      SimulationModel::Prediction p;
      ASSERT_TRUE(client.predict(c, &p).is_ok());
      challenges.push_back(
          std::vector<std::uint8_t>(c.bits.begin(), c.bits.end()));
      responses.push_back(p.bit);
    }
    const attack::Dataset all = attack::encode_bits(challenges, responses);
    const attack::Dataset train = all.slice(0, 200);
    const attack::Dataset test = all.slice(200, 60);
    const auto curve = attack::attack_learning_curve(train, test, {200});
    ASSERT_EQ(curve.size(), 1u);
    EXPECT_GT(curve[0].best(), 0.05);
  }
  srv.stop();
}

}  // namespace
}  // namespace ppuf
