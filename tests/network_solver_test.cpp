// Tests for the network-level solver on hand-built compact curves where the
// steady state is known analytically.
#include <gtest/gtest.h>

#include <cmath>

#include "ppuf/network_solver.hpp"

namespace ppuf {
namespace {

/// Linear "resistor" curve through the origin, slope g (A/V), built as a
/// two-point monotone curve with linear extension on both sides.
MonotoneCurve linear_curve(double g) {
  return MonotoneCurve(std::vector<double>{-1.0, 1.0},
                       std::vector<double>{-g, g});
}

/// Saturating curve: linear up to 0.1 V, then a plateau with the small
/// residual slope every physical block has (the SCE leftover); a perfectly
/// flat plateau would make the steady state non-unique.
MonotoneCurve saturating_curve(double isat) {
  std::vector<double> xs{-1.0, 0.0, 0.05, 0.1, 1.0, 3.0};
  std::vector<double> ys{0.0,  0.0, isat * 0.5,
                         isat, isat * 1.002, isat * 1.006};
  return MonotoneCurve(xs, ys);
}

std::vector<const MonotoneCurve*> full_mesh(std::size_t n,
                                            const MonotoneCurve* c) {
  return std::vector<const MonotoneCurve*>(n * (n - 1), c);
}

TEST(NetworkSolver, RejectsBadConstruction) {
  const MonotoneCurve c = linear_curve(1.0);
  EXPECT_THROW(NetworkSolver(1, {}), std::invalid_argument);
  EXPECT_THROW(NetworkSolver(3, full_mesh(2, &c)), std::invalid_argument);
}

TEST(NetworkSolver, TwoNodeLinearNetwork) {
  // Two nodes, both directions linear g = 1e-6.  Source at 2 V, sink 0:
  // forward edge carries 2 uA, reverse edge carries -2 uA, so the net
  // source current is 4 uA.
  const MonotoneCurve c = linear_curve(1e-6);
  NetworkSolver solver(2, full_mesh(2, &c));
  const auto r = solver.solve_dc(0, 1, 2.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.source_current, 4e-6, 1e-12);
}

TEST(NetworkSolver, ThreeNodeLinearDividerVoltage) {
  // Complete 3-node linear network: by symmetry the middle node sits at
  // V(s)/2.
  const MonotoneCurve c = linear_curve(1e-6);
  NetworkSolver solver(3, full_mesh(3, &c));
  const auto r = solver.solve_dc(0, 2, 2.0);
  ASSERT_TRUE(r.converged);
  // gmin (1e-12 S to ground) against g = 1e-6 branches pulls the midpoint
  // down by ~5e-7 V.
  EXPECT_NEAR(r.node_voltage[1], 1.0, 2e-6);
  EXPECT_NEAR(r.node_voltage[0], 2.0, 1e-12);
  EXPECT_NEAR(r.node_voltage[2], 0.0, 1e-12);
}

TEST(NetworkSolver, NullCurvesDisableEdges) {
  // Only the direct source->sink edge is active.
  const MonotoneCurve c = linear_curve(1e-6);
  std::vector<const MonotoneCurve*> curves(3 * 2, nullptr);
  curves[0] = &c;  // edge (0,1) in row-major pair order
  NetworkSolver solver(3, curves);
  const auto r = solver.solve_dc(0, 1, 2.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.source_current, 2e-6, 1e-12);
}

TEST(NetworkSolver, SaturatingSeriesPathDeliversIsat) {
  // 3-node path through saturating blocks: with 2 V available and a knee
  // at 0.1 V, both hops saturate and the 2-hop path carries Isat, plus the
  // direct source->sink edge carries Isat.
  const MonotoneCurve c = saturating_curve(1e-7);
  NetworkSolver solver(3, full_mesh(3, &c));
  const auto r = solver.solve_dc(0, 2, 2.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.source_current, 2e-7, 2e-9);
}

TEST(NetworkSolver, ConservationAtInternalNodes) {
  const MonotoneCurve c = saturating_curve(5e-8);
  const std::size_t n = 6;
  NetworkSolver solver(n, full_mesh(n, &c));
  const auto r = solver.solve_dc(0, 5, 2.0);
  ASSERT_TRUE(r.converged);
  const auto flows = solver.edge_currents(r.node_voltage);
  // KCL at every internal node from the reported edge currents.
  std::vector<double> net(n, 0.0);
  std::size_t e = 0;
  for (graph::VertexId i = 0; i < n; ++i) {
    for (graph::VertexId j = 0; j < n; ++j) {
      if (i == j) continue;
      net[i] -= flows[e];
      net[j] += flows[e];
      ++e;
    }
  }
  // gmin leaks ~1e-12 A per node, which is the KCL error visible from the
  // reported branch currents alone.
  for (graph::VertexId v = 1; v < 5; ++v)
    EXPECT_NEAR(net[v], 0.0, 5e-12) << "node " << v;
  // The source's net outflow is the reported source current.
  EXPECT_NEAR(-net[0], r.source_current, 1e-11);
}

TEST(NetworkSolver, WarmStartConverges) {
  const MonotoneCurve c = saturating_curve(5e-8);
  NetworkSolver solver(5, full_mesh(5, &c));
  const auto cold = solver.solve_dc(0, 4, 2.0);
  ASSERT_TRUE(cold.converged);
  const auto warm = solver.solve_dc(0, 4, 2.0, &cold.node_voltage);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_NEAR(warm.source_current, cold.source_current, 1e-15);
}

TEST(NetworkSolver, BadSourceSinkThrows) {
  const MonotoneCurve c = linear_curve(1e-6);
  NetworkSolver solver(3, full_mesh(3, &c));
  EXPECT_THROW(solver.solve_dc(0, 0, 2.0), std::invalid_argument);
  EXPECT_THROW(solver.solve_dc(0, 7, 2.0), std::invalid_argument);
}

// Transient tests use linear curves: the charging transient is large and
// its time constant (C / node conductance) is analytic.  On saturating
// curves the source current barely moves during charging — that regime is
// exercised end-to-end by the delay benches on real block curves.
TEST(NetworkSolver, TransientSettlesToDcValue) {
  const MonotoneCurve c = linear_curve(1e-6);
  const std::size_t n = 4;
  NetworkSolver solver(n, full_mesh(n, &c));
  const auto dc = solver.solve_dc(0, 3, 2.0);
  ASSERT_TRUE(dc.converged);

  NetworkSolver::TransientOptions topt;
  topt.dt = 2e-11;
  topt.t_end = 8e-9;
  const std::vector<double> caps(n, 1e-15);
  const auto tr = solver.solve_transient(0, 3, 2.0, caps, topt);
  ASSERT_GT(tr.settle_time, 0.0);
  EXPECT_NEAR(tr.source_current.back(), dc.source_current,
              2e-3 * dc.source_current);
  // The current starts away from its final value (internal nodes at 0 V
  // draw extra current through the source edges).
  EXPECT_GT(std::abs(tr.source_current.front() - dc.source_current),
            0.1 * dc.source_current);
  // Settle time is a few RC: tau = C / (6 branches * 1 uS) ~ 0.17 ns.
  EXPECT_LT(tr.settle_time, 3e-9);
}

TEST(NetworkSolver, LargerCapacitanceSettlesSlower) {
  const MonotoneCurve c = linear_curve(1e-6);
  const std::size_t n = 4;
  NetworkSolver solver(n, full_mesh(n, &c));
  NetworkSolver::TransientOptions topt;
  topt.dt = 2e-11;
  topt.t_end = 4e-8;
  const auto fast = solver.solve_transient(
      0, 3, 2.0, std::vector<double>(n, 1e-15), topt);
  const auto slow = solver.solve_transient(
      0, 3, 2.0, std::vector<double>(n, 4e-15), topt);
  ASSERT_GT(fast.settle_time, 0.0);
  ASSERT_GT(slow.settle_time, 0.0);
  EXPECT_GT(slow.settle_time, fast.settle_time);
}

TEST(NetworkSolver, TransientValidatesCapacitanceSize) {
  const MonotoneCurve c = linear_curve(1e-6);
  NetworkSolver solver(3, full_mesh(3, &c));
  NetworkSolver::TransientOptions topt;
  EXPECT_THROW(
      solver.solve_transient(0, 2, 2.0, std::vector<double>(2, 1e-15), topt),
      std::invalid_argument);
}

}  // namespace
}  // namespace ppuf
