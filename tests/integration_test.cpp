// End-to-end integration: fabricate a PPUF, publish its model, run the
// full pipeline (metrics, attack, protocol) on one instance, and check the
// cross-module invariants the paper's story depends on.
#include <gtest/gtest.h>

#include "attack/harness.hpp"
#include "metrics/puf_metrics.hpp"
#include "ppuf/delay.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"

namespace ppuf {
namespace {

TEST(Integration, FabricateModelAttackAuthenticate) {
  PpufParams params;
  params.node_count = 10;
  params.grid_size = 8;  // 64 type-B bits, like the paper's 40-node PPUF
  MaxFlowPpuf puf(params, 2024);
  SimulationModel model(puf);
  util::Rng rng(1);

  // 1. Execution-vs-simulation equivalence across challenges.
  double worst_err = 0.0;
  for (int i = 0; i < 6; ++i) {
    const Challenge c = random_challenge(puf.layout(), rng);
    const auto exe = puf.evaluate(c);
    const auto sim = model.predict(c);
    worst_err = std::max(
        worst_err, std::abs(exe.current_a - sim.flow_a) / exe.current_a);
  }
  EXPECT_LT(worst_err, 0.05);

  // 2. The model supports the authentication protocol end to end.
  double mean_cap = 0.0;
  for (graph::EdgeId e = 0; e < puf.layout().edge_count(); ++e)
    mean_cap += model.capacity(0, e, 0);
  mean_cap /= static_cast<double>(puf.layout().edge_count());
  const protocol::Verifier verifier(model, 1.0, 0.05 * mean_cap);
  const Challenge c = verifier.issue_challenge(rng);
  const auto honest = protocol::prove_with_ppuf(
      puf, c, analytic_delay_bound(params, params.node_count));
  EXPECT_TRUE(verifier.verify(c, honest).accepted);

  // 3. A short model-building attack runs end to end and stays well above
  //    the arbiter-PUF error floor (full curves live in the bench).
  std::vector<std::vector<std::uint8_t>> challenges;
  std::vector<int> responses;
  for (int i = 0; i < 260; ++i) {
    const Challenge ch =
        random_challenge_fixed_ends(puf.layout(), 0, 5, rng);
    challenges.push_back(
        std::vector<std::uint8_t>(ch.bits.begin(), ch.bits.end()));
    responses.push_back(puf.evaluate(ch).bit);
  }
  const attack::Dataset all = attack::encode_bits(challenges, responses);
  const attack::Dataset train = all.slice(0, 200);
  const attack::Dataset test = all.slice(200, 60);
  const auto curve = attack::attack_learning_curve(train, test, {200});
  ASSERT_EQ(curve.size(), 1u);
  // At this budget the 64-bit challenge space keeps every attacker far
  // from the arbiter-PUF error floor (< 1%); the full-size learning curves
  // are produced by bench_fig10_model_building.
  EXPECT_GT(curve[0].best(), 0.05);
}

TEST(Integration, ResponsesFormReasonablePufPopulation) {
  PpufParams params;
  params.node_count = 8;
  params.grid_size = 4;
  const std::size_t instances = 6;
  const std::size_t challenges = 24;

  util::Rng rng(9);
  std::vector<Challenge> cs;
  {
    const CrossbarLayout layout(params.node_count, params.grid_size);
    for (std::size_t i = 0; i < challenges; ++i)
      cs.push_back(random_challenge(layout, rng));
  }

  metrics::ResponseMatrix responses(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    MaxFlowPpuf puf(params, 5000 + i);
    for (const Challenge& c : cs)
      responses[i].push_back(static_cast<std::uint8_t>(puf.evaluate(c).bit));
  }

  const auto inter = metrics::inter_class_hd(responses);
  EXPECT_GT(inter.mean, 0.25);
  EXPECT_LT(inter.mean, 0.75);
  const auto uni = metrics::uniformity(responses);
  EXPECT_GT(uni.mean, 0.2);
  EXPECT_LT(uni.mean, 0.8);
}

TEST(Integration, EnvironmentalReevaluationIsMostlyStable) {
  PpufParams params;
  params.node_count = 8;
  params.grid_size = 4;
  MaxFlowPpuf puf(params, 31337);
  util::Rng rng(2);
  util::Rng noise(3);

  circuit::Environment stress;
  stress.vdd_scale = 1.05;
  stress.temperature_c = 60.0;

  std::size_t flips = 0;
  const std::size_t total = 16;
  for (std::size_t i = 0; i < total; ++i) {
    const Challenge c = random_challenge(puf.layout(), rng);
    const int ref = puf.evaluate(c).bit;
    const int redo = puf.evaluate(c, stress, &noise).bit;
    flips += ref != redo ? 1 : 0;
  }
  // Differential structure suppresses common-mode environment shifts:
  // most responses survive a simultaneous VDD + temperature excursion.
  EXPECT_LT(flips, total / 2);
}

}  // namespace
}  // namespace ppuf
