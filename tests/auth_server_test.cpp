// End-to-end tests of the authentication service: AuthServer + AuthClient
// over real loopback sockets.
//
// Everything here runs against in-process servers on ephemeral 127.0.0.1
// ports, so the suite exercises the full stack — framing, epoll loop,
// worker pool, admission control, deadline propagation, graceful drain —
// without touching anything outside the test process.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "backend/backend.hpp"
#include "backend/pdl_backend.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"
#include "registry/device_registry.hpp"
#include "server/auth_server.hpp"
#include "testing/fault_injection.hpp"
#include "util/status.hpp"

namespace ppuf {
namespace {

using net::AuthClient;
using net::Frame;
using net::MessageType;
using net::WireCode;
using server::AuthServer;
using server::AuthServerOptions;
using util::Status;
using util::StatusCode;

constexpr std::uint64_t kSeed = 7;
constexpr double kChipDelay = 1e-6;

PpufParams small_params() {
  PpufParams p;
  p.node_count = 16;
  p.grid_size = 4;
  return p;
}

/// One fabricated instance + its public model, shared by every test (the
/// tests in this binary run sequentially on one thread).
MaxFlowPpuf& shared_puf() {
  static MaxFlowPpuf puf(small_params(), kSeed);
  return puf;
}

SimulationModel& shared_model() {
  static SimulationModel model(shared_puf());
  return model;
}

AuthServerOptions default_options() {
  AuthServerOptions o;
  o.threads = 2;
  o.chain_length = 3;
  o.spot_checks = 0;  // verify every round: deterministic verdicts
  return o;
}

/// Read one whole frame from a raw blocking socket.
Status read_frame(int fd, const util::Deadline& deadline, Frame* out) {
  std::vector<std::uint8_t> buf(net::kHeaderSize);
  if (Status s = net::recv_exact(fd, buf.data(), buf.size(), deadline);
      !s.is_ok())
    return s;
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(buf[28]) |
      static_cast<std::uint32_t>(buf[29]) << 8 |
      static_cast<std::uint32_t>(buf[30]) << 16 |
      static_cast<std::uint32_t>(buf[31]) << 24;
  if (payload_len > net::kMaxPayload)
    return Status::internal("oversized reply payload");
  buf.resize(net::kHeaderSize + payload_len);
  if (payload_len > 0) {
    if (Status s = net::recv_exact(fd, buf.data() + net::kHeaderSize,
                                   payload_len, deadline);
        !s.is_ok())
      return s;
  }
  std::size_t consumed = 0;
  if (net::decode_frame(buf.data(), buf.size(), out, &consumed) !=
      net::DecodeResult::kOk)
    return Status::internal("unparseable reply frame");
  return Status::ok();
}

WireCode error_code_of(const Frame& reply) {
  net::ErrorReply err;
  if (reply.type != MessageType::kErrorReply ||
      !net::decode_error_reply(reply.payload, &err).is_ok())
    return WireCode::kOk;
  return err.code;
}

TEST(AuthServer, BindsEphemeralPortAndStops) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  EXPECT_NE(srv.port(), 0);
  EXPECT_TRUE(srv.running());
  srv.stop();
  EXPECT_FALSE(srv.running());
}

TEST(AuthServer, PingReportsHealthPayload) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  AuthClient client("127.0.0.1", srv.port());
  net::HealthInfo health;
  ASSERT_TRUE(client.ping(0, {}, &health).is_ok());
  EXPECT_EQ(health.draining, 0);
  EXPECT_EQ(health.max_inflight,
            static_cast<std::uint32_t>(default_options().max_inflight));
  // The ping being answered is itself in flight when the snapshot is
  // taken, so both tallies are at least one.
  EXPECT_GE(health.inflight, 1u);
  EXPECT_GE(health.requests_served, 1u);
  EXPECT_GE(health.connections_accepted, 1u);
  srv.stop();
}

TEST(AuthServer, PredictMatchesLocalModel) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  AuthClient client("127.0.0.1", srv.port());
  util::Rng rng(21);
  for (int i = 0; i < 5; ++i) {
    const Challenge c = random_challenge(shared_model().layout(), rng);
    SimulationModel::Prediction remote;
    ASSERT_TRUE(client.predict(c, &remote).is_ok());
    const SimulationModel::Prediction local = shared_model().predict(c);
    EXPECT_EQ(remote.bit, local.bit);
    EXPECT_EQ(remote.flow_a, local.flow_a);
    EXPECT_EQ(remote.flow_b, local.flow_b);
  }
  srv.stop();
}

TEST(AuthServer, VerifyAcceptsHonestRejectsTampered) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  AuthClient client("127.0.0.1", srv.port());
  util::Rng rng(22);
  const Challenge c = random_challenge(shared_model().layout(), rng);
  const protocol::ProverReport honest =
      protocol::prove_with_ppuf(shared_puf(), c, kChipDelay);

  protocol::AuthenticationResult result;
  ASSERT_TRUE(client.verify(c, honest, &result).is_ok());
  EXPECT_TRUE(result.accepted) << result.detail;

  protocol::ProverReport tampered = honest;
  tampered.bit ^= 1;  // claim the opposite response
  ASSERT_TRUE(client.verify(c, tampered, &result).is_ok());
  EXPECT_FALSE(result.accepted);
  srv.stop();
}

TEST(AuthServer, VerifyBatchKeepsItemOrder) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  AuthClient client("127.0.0.1", srv.port());
  util::Rng rng(23);
  std::vector<Challenge> challenges;
  std::vector<protocol::ProverReport> reports;
  for (int i = 0; i < 3; ++i) {
    challenges.push_back(random_challenge(shared_model().layout(), rng));
    reports.push_back(
        protocol::prove_with_ppuf(shared_puf(), challenges.back(),
                                  kChipDelay));
  }
  reports[1].flow_a *= 2.0;  // tamper the middle item only
  std::vector<protocol::AuthenticationResult> results;
  ASSERT_TRUE(client.verify_batch(challenges, reports, &results).is_ok());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].accepted) << results[0].detail;
  EXPECT_FALSE(results[1].accepted);
  EXPECT_TRUE(results[2].accepted) << results[2].detail;
  srv.stop();
}

TEST(AuthServer, ChainedAuthAcceptsHolderRejectsWrongChip) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  AuthClient client("127.0.0.1", srv.port());

  net::ChallengeGrant grant;
  ASSERT_TRUE(client.get_challenge(&grant).is_ok());
  EXPECT_EQ(grant.chain_length, 3u);
  EXPECT_GT(grant.deadline_seconds, 0.0);

  // The honest holder executes the chain on the real chip.
  const protocol::ChainedReport honest = protocol::prove_chain_with_ppuf(
      shared_puf(), grant.challenge, grant.chain_length, grant.nonce,
      kChipDelay);
  protocol::ChainedVerifyResult verdict;
  ASSERT_TRUE(client.chained_auth(grant, honest, &verdict).is_ok());
  EXPECT_TRUE(verdict.accepted) << verdict.detail;

  // A different chip (wrong seed) answers the same grant and must fail.
  MaxFlowPpuf impostor(small_params(), kSeed + 1);
  ASSERT_TRUE(client.get_challenge(&grant).is_ok());
  const protocol::ChainedReport forged = protocol::prove_chain_with_ppuf(
      impostor, grant.challenge, grant.chain_length, grant.nonce, kChipDelay);
  ASSERT_TRUE(client.chained_auth(grant, forged, &verdict).is_ok());
  EXPECT_FALSE(verdict.accepted);
  srv.stop();
}

TEST(AuthServer, InvalidChallengeIsTypedInvalidArgument) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  AuthClient client("127.0.0.1", srv.port());
  Challenge bad;
  bad.source = 0;
  bad.sink = 9999;  // out of range for a 16-node model
  bad.bits.assign(shared_model().layout().cell_count(), 0);
  SimulationModel::Prediction p;
  const Status s = client.predict(bad, &p);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  srv.stop();
}

TEST(AuthServer, DeadlineExpiryYieldsTypedReplyOnLiveConnection) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  net::Socket sock;
  ASSERT_TRUE(
      net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock).is_ok());
  const util::Deadline io = util::Deadline::after_seconds(5.0);

  // budget_ms = 25 while the handler is asked to hold the request 1000 ms:
  // the budget expires mid-work and must yield a typed error reply.
  const std::vector<std::uint8_t> request = net::encode_frame(
      MessageType::kPingRequest, 50, 0, 25, net::encode_ping_request(1000));
  ASSERT_TRUE(
      net::send_all(sock.fd(), request.data(), request.size(), io).is_ok());
  Frame reply;
  ASSERT_TRUE(read_frame(sock.fd(), io, &reply).is_ok());
  EXPECT_EQ(reply.request_id, 50u);
  EXPECT_EQ(error_code_of(reply), WireCode::kDeadlineExceeded);

  // Not a dropped connection: the next request on the same socket works.
  const std::vector<std::uint8_t> followup = net::encode_frame(
      MessageType::kPingRequest, 51, 0, 0, net::encode_ping_request(0));
  ASSERT_TRUE(
      net::send_all(sock.fd(), followup.data(), followup.size(), io)
          .is_ok());
  ASSERT_TRUE(read_frame(sock.fd(), io, &reply).is_ok());
  EXPECT_EQ(reply.type, MessageType::kPingReply);
  EXPECT_EQ(reply.request_id, 51u);
  srv.stop();
}

TEST(AuthServer, OverloadYieldsTypedRepliesWithoutBlockingAcceptor) {
  AuthServerOptions tiny = default_options();
  tiny.threads = 1;
  tiny.max_inflight = 1;
  AuthServer srv(shared_model(), tiny);
  ASSERT_TRUE(srv.start().is_ok());
  net::Socket sock;
  ASSERT_TRUE(
      net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock).is_ok());
  const util::Deadline io = util::Deadline::after_seconds(10.0);

  // Three pipelined requests; the first parks the only worker for 300 ms,
  // so admission control must answer the other two typed OVERLOADED.
  std::vector<std::uint8_t> burst;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const std::vector<std::uint8_t> f = net::encode_frame(
        MessageType::kPingRequest, id, 0, 0, net::encode_ping_request(300));
    burst.insert(burst.end(), f.begin(), f.end());
  }
  ASSERT_TRUE(
      net::send_all(sock.fd(), burst.data(), burst.size(), io).is_ok());

  int served = 0, overloaded = 0;
  for (int i = 0; i < 3; ++i) {
    Frame reply;
    ASSERT_TRUE(read_frame(sock.fd(), io, &reply).is_ok());
    if (reply.type == MessageType::kPingReply)
      ++served;
    else if (error_code_of(reply) == WireCode::kOverloaded)
      ++overloaded;
  }
  EXPECT_EQ(served, 1);
  EXPECT_EQ(overloaded, 2);

  // While the admission bound was doing its job the acceptor stayed live:
  // a second connection gets served immediately afterwards.
  AuthClient client("127.0.0.1", srv.port());
  EXPECT_TRUE(client.ping().is_ok());
  srv.stop();
  EXPECT_EQ(srv.stats().overloaded_rejections, 2u);
}

TEST(AuthServer, ClientRetriesThroughOverload) {
  AuthServerOptions tiny = default_options();
  tiny.threads = 1;
  tiny.max_inflight = 1;
  AuthServer srv(shared_model(), tiny);
  ASSERT_TRUE(srv.start().is_ok());

  // Thread A parks the only worker; B's first attempt is rejected typed
  // OVERLOADED, then backoff + retry succeed once the worker frees up.
  std::thread occupant([&] {
    AuthClient a("127.0.0.1", srv.port());
    EXPECT_TRUE(a.ping(150).is_ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  net::ClientOptions retrying;
  retrying.max_attempts = 10;
  retrying.backoff_initial_ms = 20;
  retrying.backoff_max_ms = 100;
  AuthClient b("127.0.0.1", srv.port(), retrying);
  EXPECT_TRUE(b.ping().is_ok());
  EXPECT_GE(b.stats().retries, 1u);
  occupant.join();
  srv.stop();
}

TEST(AuthServer, DrainRejectsNewFinishesInflight) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  net::Socket sock;
  ASSERT_TRUE(
      net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock).is_ok());
  const util::Deadline io = util::Deadline::after_seconds(10.0);

  // In-flight work before the drain begins...
  const std::vector<std::uint8_t> slow = net::encode_frame(
      MessageType::kPingRequest, 1, 0, 0, net::encode_ping_request(300));
  ASSERT_TRUE(
      net::send_all(sock.fd(), slow.data(), slow.size(), io).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  srv.request_drain();
  EXPECT_TRUE(srv.draining());

  // ...must finish; new *work* must be answered typed SHUTTING_DOWN
  // (PING is exempt: readiness probes are served inline during a drain).
  const std::vector<std::uint8_t> late = net::encode_frame(
      MessageType::kChallengeRequest, 2, 0, 0,
      net::encode_challenge_request());
  ASSERT_TRUE(
      net::send_all(sock.fd(), late.data(), late.size(), io).is_ok());
  const std::vector<std::uint8_t> probe = net::encode_frame(
      MessageType::kPingRequest, 3, 0, 0, net::encode_ping_request(0));
  ASSERT_TRUE(
      net::send_all(sock.fd(), probe.data(), probe.size(), io).is_ok());

  int ping_ok = 0, shutting_down = 0, drain_visible = 0;
  for (int i = 0; i < 3; ++i) {
    Frame reply;
    ASSERT_TRUE(read_frame(sock.fd(), io, &reply).is_ok());
    if (reply.type == MessageType::kPingReply && reply.request_id == 1) {
      ++ping_ok;
    } else if (reply.type == MessageType::kPingReply &&
               reply.request_id == 3) {
      net::HealthInfo health;
      ASSERT_TRUE(net::decode_ping_reply(reply.payload, &health).is_ok());
      EXPECT_EQ(health.draining, 1);
      ++drain_visible;
    } else if (error_code_of(reply) == WireCode::kShuttingDown) {
      ++shutting_down;
    }
  }
  EXPECT_EQ(ping_ok, 1);
  EXPECT_EQ(shutting_down, 1);
  EXPECT_EQ(drain_visible, 1);

  srv.wait();
  EXPECT_FALSE(srv.running());
  EXPECT_EQ(srv.stats().shutdown_rejections, 1u);

  // Fully drained: the listener is gone.
  net::Socket refused;
  EXPECT_FALSE(
      net::connect_tcp("127.0.0.1", srv.port(), 250, &refused).is_ok());
}

TEST(AuthServer, MalformedStreamGetsTypedErrorThenClose) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  net::Socket sock;
  ASSERT_TRUE(
      net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock).is_ok());
  const util::Deadline io = util::Deadline::after_seconds(5.0);

  std::vector<std::uint8_t> garbage(net::kHeaderSize, 0x58);  // "XXXX..."
  ASSERT_TRUE(
      net::send_all(sock.fd(), garbage.data(), garbage.size(), io).is_ok());
  Frame reply;
  ASSERT_TRUE(read_frame(sock.fd(), io, &reply).is_ok());
  EXPECT_EQ(error_code_of(reply), WireCode::kMalformed);

  // An unsynchronised stream cannot be trusted further: the server closes
  // after flushing the error.
  std::uint8_t byte = 0;
  EXPECT_FALSE(net::recv_exact(sock.fd(), &byte, 1, io).is_ok());
  srv.stop();
  EXPECT_EQ(srv.stats().malformed_frames, 1u);
}

TEST(AuthServer, NonRequestTypeGetsTypedUnsupported) {
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  net::Socket sock;
  ASSERT_TRUE(
      net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock).is_ok());
  const util::Deadline io = util::Deadline::after_seconds(5.0);
  // A well-framed message whose type is a *reply*: framing survives, the
  // dispatcher rejects it typed.
  const std::vector<std::uint8_t> bogus =
      net::encode_frame(MessageType::kPingReply, 3, 0, 0, {});
  ASSERT_TRUE(
      net::send_all(sock.fd(), bogus.data(), bogus.size(), io).is_ok());
  Frame reply;
  ASSERT_TRUE(read_frame(sock.fd(), io, &reply).is_ok());
  EXPECT_EQ(error_code_of(reply), WireCode::kUnsupportedType);
  srv.stop();
}

TEST(AuthServer, SurvivesInjectedSendFailureMidPipeline) {
  // Deterministic regression for a use-after-free: the fault hook makes the
  // server's first reply send fail as if the peer reset the connection, so
  // close_connection() destroys the Connection inside consume_frames with
  // 63 pipelined frames still unprocessed.  The loop must re-look-up the
  // connection instead of touching the destroyed one (the ASan CI job
  // turns any regression into a crash).
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  const util::Deadline io = util::Deadline::after_seconds(5.0);
  const std::vector<std::uint8_t> one =
      net::encode_frame(MessageType::kPingReply, 9, 0, 0, {});
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < 64; ++i)
    burst.insert(burst.end(), one.begin(), one.end());
  {
    testing::FaultSpec spec;
    spec.server_send_failures = 1;
    const testing::ScopedFaultInjection fault(spec);
    net::Socket sock;
    ASSERT_TRUE(
        net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock).is_ok());
    ASSERT_TRUE(
        net::send_all(sock.fd(), burst.data(), burst.size(), io).is_ok());
    // The injected failure makes the server close this connection without
    // replying; recv returning 0/error is the sync point proving the burst
    // was fully processed before the hook is disarmed.
    std::uint8_t sink[256];
    while (::recv(sock.fd(), sink, sizeof(sink), 0) > 0) {
    }
  }
  // The server must come through intact and still serving.
  AuthClient client("127.0.0.1", srv.port());
  EXPECT_TRUE(client.ping().is_ok());
  srv.stop();
}

TEST(AuthServer, SurvivesPipelinedFramesWithAbruptReset) {
  // Regression for a use-after-free: a send error while replying to one of
  // several pipelined frames closes (destroys) the connection inside
  // consume_frames, which must then stop touching it.  Non-request frames
  // produce their error replies synchronously on the event loop, so an
  // RST racing the reply burst exercises exactly that path (the ASan CI
  // job turns any regression into a crash).
  AuthServer srv(shared_model(), default_options());
  ASSERT_TRUE(srv.start().is_ok());
  const util::Deadline io = util::Deadline::after_seconds(5.0);
  const std::vector<std::uint8_t> one =
      net::encode_frame(MessageType::kPingReply, 9, 0, 0, {});
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < 64; ++i)
    burst.insert(burst.end(), one.begin(), one.end());
  for (int trial = 0; trial < 20; ++trial) {
    net::Socket sock;
    ASSERT_TRUE(
        net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock).is_ok());
    ASSERT_TRUE(
        net::send_all(sock.fd(), burst.data(), burst.size(), io).is_ok());
    // Close with the replies unread and linger zeroed: the peer sees an
    // RST, so the server's next send on this connection fails mid-burst.
    struct linger lg = {1, 0};
    setsockopt(sock.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }  // ~Socket closes the fd here
  // The server must come through intact and still serving.
  AuthClient client("127.0.0.1", srv.port());
  EXPECT_TRUE(client.ping().is_ok());
  srv.stop();
}

TEST(AuthServer, RetryBackoffRespectsDeadline) {
  // Find a port with no listener behind it.
  net::Socket probe;
  std::uint16_t dead_port = 0;
  ASSERT_TRUE(net::listen_tcp(0, 1, &probe, &dead_port).is_ok());
  probe.close();

  net::ClientOptions slow;
  slow.max_attempts = 5;
  slow.backoff_initial_ms = 2000;  // well past the deadline if slept fully
  slow.backoff_max_ms = 2000;
  AuthClient client("127.0.0.1", dead_port, slow);
  const auto start = std::chrono::steady_clock::now();
  const Status s = client.ping(0, util::Deadline::after_seconds(0.1));
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Refusal on loopback is near-instant, so the attempts may exhaust
  // (UNAVAILABLE) a hair before the expiry check fires (DEADLINE_EXCEEDED);
  // either way the loop must bail or clamp its backoff at the deadline
  // instead of sleeping the full 2 s schedule.
  EXPECT_FALSE(s.is_ok());
  EXPECT_TRUE(s.code() == StatusCode::kDeadlineExceeded ||
              s.code() == StatusCode::kUnavailable)
      << s.to_string();
  EXPECT_LT(elapsed_ms, 1500);
}

// ---------------------------------------------------------------------------
// Multi-tenant mode: one server fronting a DeviceRegistry.

/// Fresh registry directory under the test temp dir.
std::string fresh_registry_dir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Enroll a small device and return its id.  The enrollment seed fully
/// determines the fabricated instance, so tests can build the matching
/// "chip" locally as MaxFlowPpuf(params, seed).
std::uint64_t enroll_small(registry::DeviceRegistry& reg, std::uint64_t seed,
                           const std::string& label) {
  registry::EnrollRequest req;
  req.node_count = small_params().node_count;
  req.grid_size = small_params().grid_size;
  req.seed = seed;
  req.label = label;
  std::uint64_t id = 0;
  EXPECT_TRUE(reg.enroll(req, &id).is_ok());
  return id;
}

AuthClient client_for_device(std::uint16_t port, std::uint64_t device_id) {
  net::ClientOptions o;
  o.device_id = device_id;
  return AuthClient("127.0.0.1", port, o);
}

/// Run one full chained authentication against `port` as `device_id`,
/// proving with `chip`.  Returns the transport status; *verdict reports
/// the protocol outcome when the exchange itself succeeded.
Status chained_auth_as(std::uint16_t port, std::uint64_t device_id,
                       MaxFlowPpuf& chip,
                       protocol::ChainedVerifyResult* verdict) {
  AuthClient client = client_for_device(port, device_id);
  net::ChallengeGrant grant;
  if (Status s = client.get_challenge(&grant); !s.is_ok()) return s;
  const protocol::ChainedReport report = protocol::prove_chain_with_ppuf(
      chip, grant.challenge, grant.chain_length, grant.nonce, kChipDelay);
  return client.chained_auth(grant, report, verdict);
}

TEST(AuthServerRegistry, ServesEnrolledDevicesAndRejectsCrossDeviceProofs) {
  registry::DeviceRegistry reg;
  ASSERT_TRUE(
      reg.open(fresh_registry_dir("authsrv_multi")).is_ok());
  const std::uint64_t seeds[3] = {101, 102, 103};
  std::uint64_t ids[3];
  for (int i = 0; i < 3; ++i)
    ids[i] = enroll_small(reg, seeds[i], "dev");

  AuthServer srv(reg, default_options());
  ASSERT_TRUE(srv.start().is_ok());

  // Every enrolled device authenticates with its own silicon...
  for (int i = 0; i < 3; ++i) {
    MaxFlowPpuf chip(small_params(), seeds[i]);
    protocol::ChainedVerifyResult verdict;
    ASSERT_TRUE(
        chained_auth_as(srv.port(), ids[i], chip, &verdict).is_ok());
    EXPECT_TRUE(verdict.accepted)
        << "device " << ids[i] << ": " << verdict.detail;
  }
  // ...and device A's chip cannot answer for device B.
  MaxFlowPpuf chip_a(small_params(), seeds[0]);
  protocol::ChainedVerifyResult verdict;
  ASSERT_TRUE(
      chained_auth_as(srv.port(), ids[1], chip_a, &verdict).is_ok());
  EXPECT_FALSE(verdict.accepted);

  // PREDICT is routed per device too: same challenge, per-device answers
  // matching each device's own published model.
  util::Rng rng(31);
  SimulationModel model_a, model_b;
  ASSERT_TRUE(reg.load_model(ids[0], &model_a).is_ok());
  ASSERT_TRUE(reg.load_model(ids[1], &model_b).is_ok());
  const Challenge c = random_challenge(model_a.layout(), rng);
  SimulationModel::Prediction pa, pb;
  ASSERT_TRUE(client_for_device(srv.port(), ids[0]).predict(c, &pa).is_ok());
  ASSERT_TRUE(client_for_device(srv.port(), ids[1]).predict(c, &pb).is_ok());
  EXPECT_EQ(pa.flow_a, model_a.predict(c).flow_a);
  EXPECT_EQ(pb.flow_a, model_b.predict(c).flow_a);
  srv.stop();
}

TEST(AuthServerRegistry, UnknownRevokedAndZeroIdsGetTypedNotFound) {
  registry::DeviceRegistry reg;
  ASSERT_TRUE(
      reg.open(fresh_registry_dir("authsrv_unknown")).is_ok());
  const std::uint64_t id = enroll_small(reg, 55, "victim");

  AuthServer srv(reg, default_options());
  ASSERT_TRUE(srv.start().is_ok());

  net::ChallengeGrant grant;
  // Never-enrolled id.
  EXPECT_EQ(client_for_device(srv.port(), 999).get_challenge(&grant).code(),
            StatusCode::kNotFound);
  // Id 0 has no implicit meaning in registry mode.
  EXPECT_EQ(client_for_device(srv.port(), 0).get_challenge(&grant).code(),
            StatusCode::kNotFound);

  // The device works until revoked, then gets the same typed refusal —
  // even though its model may still sit in the hydration cache.
  ASSERT_TRUE(client_for_device(srv.port(), id).get_challenge(&grant).is_ok());
  ASSERT_TRUE(reg.revoke(id).is_ok());
  EXPECT_EQ(client_for_device(srv.port(), id).get_challenge(&grant).code(),
            StatusCode::kNotFound);

  EXPECT_GE(srv.stats().unknown_device_rejections, 3u);
  srv.stop();
}

TEST(AuthServerRegistry, RegistryPersistsAcrossServerRestart) {
  // Seed 101 is known-good for the first grant of a challenge_seed=1
  // server (the chained protocol's flow tolerance is approximate, so
  // accept/reject is deterministic per (device seed, challenge) pair).
  constexpr std::uint64_t kDeviceSeed = 101;
  const std::string dir = fresh_registry_dir("authsrv_restart");
  std::uint64_t id = 0;
  {
    registry::DeviceRegistry reg;
    ASSERT_TRUE(reg.open(dir).is_ok());
    id = enroll_small(reg, kDeviceSeed, "persistent");
    AuthServer srv(reg, default_options());
    ASSERT_TRUE(srv.start().is_ok());
    MaxFlowPpuf chip(small_params(), kDeviceSeed);
    protocol::ChainedVerifyResult verdict;
    ASSERT_TRUE(chained_auth_as(srv.port(), id, chip, &verdict).is_ok());
    EXPECT_TRUE(verdict.accepted) << verdict.detail;
    srv.stop();
  }
  // Cold start: a new registry instance recovered from disk serves the
  // same device to a new server.
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  AuthServer srv(reg, default_options());
  ASSERT_TRUE(srv.start().is_ok());
  MaxFlowPpuf chip(small_params(), kDeviceSeed);
  protocol::ChainedVerifyResult verdict;
  ASSERT_TRUE(chained_auth_as(srv.port(), id, chip, &verdict).is_ok());
  EXPECT_TRUE(verdict.accepted) << verdict.detail;
  srv.stop();
}

// ------------------------------------------------------------ mixed fleet
//
// One registry, one server, two PUF families side by side: the paper's
// max-flow PPUF and the PDL delay-PUF baseline.  Everything below runs
// through the real wire path — the server must route each request to the
// right backend per device.

constexpr std::size_t kPdlStages = 24;
constexpr std::size_t kPdlInstances = 2;

std::uint64_t enroll_pdl(registry::DeviceRegistry& reg, std::uint64_t seed,
                         const std::string& label) {
  registry::EnrollRequest req;
  req.backend = backend::BackendKind::kPdlDelay;
  req.node_count = kPdlStages;     // chain stages
  req.grid_size = kPdlInstances;   // XORed instances
  req.seed = seed;
  req.label = label;
  std::uint64_t id = 0;
  EXPECT_TRUE(reg.enroll(req, &id).is_ok());
  return id;
}

/// PDL counterpart of chained_auth_as: the holder re-fabricates its
/// silicon from the enrollment seed and proves the chain with it.
Status chained_auth_as_pdl(std::uint16_t port, std::uint64_t device_id,
                           std::uint64_t holder_seed,
                           protocol::ChainedVerifyResult* verdict) {
  AuthClient client = client_for_device(port, device_id);
  net::ChallengeGrant grant;
  if (Status s = client.get_challenge(&grant); !s.is_ok()) return s;
  const std::vector<puf::ArbiterPuf> silicon =
      backend::fabricate_pdl_instances(kPdlStages, kPdlInstances,
                                       holder_seed);
  const protocol::ChainedReport report = backend::prove_chain_with_pdl(
      silicon, grant.challenge, grant.chain_length, grant.nonce, kChipDelay);
  return client.chained_auth(grant, report, verdict);
}

TEST(AuthServerMixedFleet, InterleavedBackendsAuthenticatePerDevice) {
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(fresh_registry_dir("authsrv_mixed")).is_ok());
  // Interleave enrollment order so ids alternate between the families.
  const std::uint64_t mf_seeds[2] = {201, 202};
  const std::uint64_t pdl_seeds[2] = {301, 302};
  std::uint64_t mf_ids[2], pdl_ids[2];
  mf_ids[0] = enroll_small(reg, mf_seeds[0], "mf-0");
  pdl_ids[0] = enroll_pdl(reg, pdl_seeds[0], "pdl-0");
  mf_ids[1] = enroll_small(reg, mf_seeds[1], "mf-1");
  pdl_ids[1] = enroll_pdl(reg, pdl_seeds[1], "pdl-1");

  AuthServer srv(reg, default_options());
  ASSERT_TRUE(srv.start().is_ok());

  // Each max-flow device authenticates with its own silicon...
  for (int i = 0; i < 2; ++i) {
    MaxFlowPpuf chip(small_params(), mf_seeds[i]);
    protocol::ChainedVerifyResult verdict;
    ASSERT_TRUE(
        chained_auth_as(srv.port(), mf_ids[i], chip, &verdict).is_ok());
    EXPECT_TRUE(verdict.accepted)
        << "maxflow device " << mf_ids[i] << ": " << verdict.detail;
  }
  // ...and each PDL device with its own (grants carry PDL-shaped
  // challenges: k stage bits, fixed 0->1 terminals).
  for (int i = 0; i < 2; ++i) {
    protocol::ChainedVerifyResult verdict;
    ASSERT_TRUE(chained_auth_as_pdl(srv.port(), pdl_ids[i], pdl_seeds[i],
                                    &verdict)
                    .is_ok());
    EXPECT_TRUE(verdict.accepted)
        << "pdl device " << pdl_ids[i] << ": " << verdict.detail;
  }
  // Cross-device rejection holds within the PDL family too: device 0's
  // silicon cannot answer device 1's chain.
  protocol::ChainedVerifyResult verdict;
  ASSERT_TRUE(chained_auth_as_pdl(srv.port(), pdl_ids[1], pdl_seeds[0],
                                  &verdict)
                  .is_ok());
  EXPECT_FALSE(verdict.accepted);

  // PREDICT routes per backend: a PDL device answers its parity-model
  // bit, byte-identical to a local evaluation of the public model.
  AuthClient pdl_client = client_for_device(srv.port(), pdl_ids[0]);
  net::ChallengeGrant grant;
  ASSERT_TRUE(pdl_client.get_challenge(&grant).is_ok());
  SimulationModel::Prediction p;
  ASSERT_TRUE(pdl_client.predict(grant.challenge, &p).is_ok());
  const std::vector<puf::ArbiterPuf> silicon =
      backend::fabricate_pdl_instances(kPdlStages, kPdlInstances,
                                       pdl_seeds[0]);
  EXPECT_EQ(p.bit, backend::pdl_response(silicon, grant.challenge.bits));
  // A max-flow-shaped challenge is a typed error on a PDL device.
  Challenge bad = grant.challenge;
  bad.sink = 5;
  EXPECT_EQ(pdl_client.predict(bad, &p).code(),
            StatusCode::kInvalidArgument);
  srv.stop();
}

TEST(AuthServerMixedFleet, WireEnrollTagsBackendAndRejectsUnknownTag) {
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(fresh_registry_dir("authsrv_mixed_enroll")).is_ok());
  AuthServer srv(reg, default_options());
  ASSERT_TRUE(srv.start().is_ok());

  AuthClient admin("127.0.0.1", srv.port());
  net::EnrollRequestBody spec;
  spec.backend = static_cast<std::uint8_t>(backend::BackendKind::kPdlDelay);
  spec.node_count = kPdlStages;
  spec.grid_size = kPdlInstances;
  spec.fabrication_seed = 411;
  spec.label = "wire-pdl";
  std::uint64_t id = 0;
  ASSERT_TRUE(admin.enroll_device(spec, 0, &id).is_ok());
  ASSERT_NE(id, 0u);
  // The registry recorded the tag and the device serves as PDL.
  bool found = false;
  for (const auto& info : reg.list()) {
    if (info.id != id) continue;
    found = true;
    EXPECT_EQ(info.backend, backend::BackendKind::kPdlDelay);
  }
  EXPECT_TRUE(found);
  protocol::ChainedVerifyResult verdict;
  ASSERT_TRUE(chained_auth_as_pdl(srv.port(), id, 411, &verdict).is_ok());
  EXPECT_TRUE(verdict.accepted) << verdict.detail;

  // An unknown backend tag passes the wire codec but dies server-side
  // with a typed error — no partial enrollment.
  net::EnrollRequestBody future = spec;
  future.backend = 0x7f;
  std::uint64_t unused = 0;
  EXPECT_EQ(admin.enroll_device(future, 0, &unused).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.device_count(), 1u);
  srv.stop();
}

TEST(AuthServer, PublishesMetricsWhenRegistryEnabled) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  reg.reset();
  {
    AuthServer srv(shared_model(), default_options());
    ASSERT_TRUE(srv.start().is_ok());
    AuthClient client("127.0.0.1", srv.port());
    ASSERT_TRUE(client.ping().is_ok());
    srv.stop();
  }
  EXPECT_GE(reg.counter_value("server.requests"), 1u);
  EXPECT_GE(reg.counter_value("server.connections_accepted"), 1u);
  EXPECT_GE(reg.histogram_snapshot("server.ping.request_us").count, 1u);
  reg.set_enabled(false);
}

}  // namespace
}  // namespace ppuf
