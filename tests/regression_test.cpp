// Golden-value regressions on the nominal physics.  These pin the device
// card's operating point so silent solver or model changes that would move
// every bench result get caught as a test failure with a precise diff.
// Tolerances are deliberately loose enough (1-2%) to survive benign
// numerical changes (grid tweaks, tolerance changes) but not physics bugs.
#include <gtest/gtest.h>

#include "ppuf/block.hpp"
#include "ppuf/delay.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "util/statistics.hpp"

namespace ppuf {
namespace {

const circuit::Environment kNominal = circuit::Environment::nominal();

TEST(Regression, NominalBlockOperatingPoint) {
  const BlockCurve c =
      characterize_block(PpufParams{}, circuit::BlockVariation{}, 1,
                         kNominal);
  // Saturation current of the nominal block (established operating point).
  EXPECT_NEAR(c.isat, 32.57e-9, 0.7e-9);
  // Turn-on knee: 95% of Isat reached near 0.56 V.
  EXPECT_NEAR(c.iv.inverse(0.95 * c.isat), 0.56, 0.05);
  // Plateau slope: ~0.2% per volt of residual SCE.
  const double plateau = (c.iv(2.0) - c.iv(1.0)) / c.isat;
  EXPECT_GT(plateau, 0.0);
  EXPECT_LT(plateau, 0.006);
}

TEST(Regression, StageDesignSuppressionLadder) {
  PpufParams p;
  const std::vector<double> probe{1.0, 2.0};
  std::vector<double> change;
  for (const BlockDesign d :
       {BlockDesign::kBare, BlockDesign::kSingleSd, BlockDesign::kDoubleSd}) {
    SweepCircuit sc = build_stage_test(p, d, p.vgs_low, nullptr, kNominal);
    const auto i = sweep_current(sc, probe, kNominal);
    change.push_back((i[1] - i[0]) / i[0]);
  }
  EXPECT_NEAR(change[0], 0.242, 0.02);   // bare: ~24% (lambda = 0.3)
  EXPECT_NEAR(change[1], 0.171, 0.02);   // 1-level SD
  EXPECT_NEAR(change[2], 0.0020, 0.002); // 2-level SD
}

TEST(Regression, SmallNetworkFlowValue) {
  // A fixed 8-node instance: execution current and the exact max-flow of
  // its published model, pinned with 2% slack.
  PpufParams p;
  p.node_count = 8;
  p.grid_size = 4;
  MaxFlowPpuf puf(p, 12345);
  SimulationModel model(puf);
  util::Rng rng(1);
  const Challenge c = random_challenge(puf.layout(), rng);
  const auto e = puf.evaluate(c);
  ASSERT_TRUE(e.converged);
  const auto s = model.predict(c);
  // The two agree with each other tightly...
  EXPECT_NEAR(e.current_a, s.flow_a, 0.01 * e.current_a);
  // ...and with the recorded golden magnitude (7 source edges x ~32 nA,
  // modulated by this instance's variation draw).
  EXPECT_GT(e.current_a, 0.10e-6);
  EXPECT_LT(e.current_a, 0.40e-6);
}

TEST(Regression, DelayModelConstants) {
  const PpufParams p;
  // Effective block resistance ~ 1.4 V / 32.6 nA ~ 43 Mohm.
  EXPECT_NEAR(block_effective_resistance(p), 4.3e7, 0.4e7);
  // Calibrated 900-node delay ~ 1.07 us (EXPERIMENTS.md, power table).
  EXPECT_NEAR(analytic_delay_bound(p, 900), 1.07e-6, 0.15e-6);
}

TEST(Regression, CapacityStatisticsOfPopulation) {
  PpufParams p;
  p.node_count = 12;
  p.grid_size = 4;
  MaxFlowPpuf puf(p, 777);
  SimulationModel model(puf);
  util::RunningStats caps;
  for (graph::EdgeId e = 0; e < puf.layout().edge_count(); ++e) {
    caps.add(model.capacity(0, e, 0));
    caps.add(model.capacity(0, e, 1));
  }
  // Mean ~ nominal Isat; sigma/mean ~ 60% (sigma(Vth) = 35 mV at
  // vov = 0.1 V, tempered by degeneration).
  EXPECT_NEAR(caps.mean(), 33e-9, 4e-9);
  EXPECT_NEAR(caps.stddev() / caps.mean(), 0.58, 0.12);
}

// The frozen response stream (instance seed 31415, challenge seed 9) moved
// to golden_crp_test.cpp / tests/data/golden_crps.json, which pins the
// challenges, silicon bits AND model flow values of that stream in one
// re-recordable place instead of an ad-hoc string here.

}  // namespace
}  // namespace ppuf
