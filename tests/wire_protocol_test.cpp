// Tests for protocol::codec and net/wire: canonical binary round trips,
// strict framing, and fuzz-style robustness.
//
// The fuzz sections are the decoder's safety contract: every payload and
// frame decoder consumes adversary bytes, so for EVERY byte offset of a
// valid message we check that (a) truncating there yields a typed error —
// never a crash, never an over-read — and (b) flipping bits there yields
// either a typed error or a clean decode of different values.  CI runs
// this binary under ASan/UBSan, which turns "never over-reads" from a
// claim into a checked property.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "net/wire.hpp"
#include "ppuf/ppuf.hpp"
#include "protocol/codec.hpp"
#include "registry/record.hpp"
#include "util/crc32.hpp"
#include "util/status.hpp"

namespace ppuf {
namespace {

using net::DecodeResult;
using net::Frame;
using net::MessageType;
using net::WireCode;
using protocol::codec::Reader;
using protocol::codec::Writer;
using util::Status;
using util::StatusCode;

Challenge sample_challenge() {
  Challenge c;
  c.source = 3;
  c.sink = 7;
  c.bits = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  return c;
}

protocol::ProverReport sample_report() {
  protocol::ProverReport r;
  r.bit = 1;
  r.flow_a = 2.5e-8;
  r.flow_b = 1.25e-8;
  r.edge_flow_a = {1e-9, 0.0, 2e-9, 3e-9};
  r.edge_flow_b = {0.0, 4e-9};
  r.elapsed_seconds = 1e-6;
  r.status = Status::ok();
  return r;
}

protocol::ChainedReport sample_chained_report() {
  protocol::ChainedReport r;
  r.rounds = {sample_report(), sample_report()};
  r.rounds[1].bit = 0;
  r.elapsed_seconds = 2e-6;
  r.status = Status::deadline_exceeded("stopped at round 2");
  return r;
}

net::ChallengeGrant sample_grant() {
  net::ChallengeGrant g;
  g.challenge = sample_challenge();
  g.chain_length = 4;
  g.nonce = 0xdeadbeefcafe1234ull;
  g.deadline_seconds = 0.75;
  return g;
}

// ------------------------------------------------------------- codec basics

TEST(Codec, ChallengeRoundTrip) {
  const Challenge in = sample_challenge();
  Writer w;
  protocol::codec::encode_challenge(w, in);
  Reader r(w.bytes().data(), w.bytes().size());
  Challenge out;
  ASSERT_TRUE(protocol::codec::decode_challenge(r, &out).is_ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(in, out);
}

TEST(Codec, ChallengeRejectsNonBinaryBits) {
  Challenge bad = sample_challenge();
  bad.bits[2] = 2;
  Writer w;
  protocol::codec::encode_challenge(w, bad);
  Reader r(w.bytes().data(), w.bytes().size());
  Challenge out;
  const Status s = protocol::codec::decode_challenge(r, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Codec, StatusRoundTripAllCodes) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kCancelled,
        StatusCode::kDeadlineExceeded, StatusCode::kInvalidArgument,
        StatusCode::kInternal, StatusCode::kUnavailable,
        StatusCode::kNotFound}) {
    const Status in(code, code == StatusCode::kOk ? "" : "reason text");
    Writer w;
    protocol::codec::encode_status(w, in);
    Reader r(w.bytes().data(), w.bytes().size());
    Status out;
    ASSERT_TRUE(protocol::codec::decode_status(r, &out).is_ok());
    EXPECT_EQ(out.code(), in.code());
    EXPECT_EQ(out.message(), in.message());
  }
}

TEST(Codec, ProverReportRoundTrip) {
  const protocol::ProverReport in = sample_report();
  Writer w;
  protocol::codec::encode_prover_report(w, in);
  Reader r(w.bytes().data(), w.bytes().size());
  protocol::ProverReport out;
  ASSERT_TRUE(protocol::codec::decode_prover_report(r, &out).is_ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(out.bit, in.bit);
  EXPECT_EQ(out.flow_a, in.flow_a);
  EXPECT_EQ(out.flow_b, in.flow_b);
  EXPECT_EQ(out.edge_flow_a, in.edge_flow_a);
  EXPECT_EQ(out.edge_flow_b, in.edge_flow_b);
  EXPECT_EQ(out.elapsed_seconds, in.elapsed_seconds);
  EXPECT_EQ(out.status.code(), in.status.code());
}

TEST(Codec, ChainedReportRoundTrip) {
  const protocol::ChainedReport in = sample_chained_report();
  Writer w;
  protocol::codec::encode_chained_report(w, in);
  Reader r(w.bytes().data(), w.bytes().size());
  protocol::ChainedReport out;
  ASSERT_TRUE(protocol::codec::decode_chained_report(r, &out).is_ok());
  ASSERT_EQ(out.rounds.size(), in.rounds.size());
  EXPECT_EQ(out.rounds[0].bit, in.rounds[0].bit);
  EXPECT_EQ(out.rounds[1].bit, in.rounds[1].bit);
  EXPECT_EQ(out.elapsed_seconds, in.elapsed_seconds);
  EXPECT_EQ(out.status.code(), in.status.code());
  EXPECT_EQ(out.status.message(), in.status.message());
}

TEST(Codec, PredictionRoundTrip) {
  SimulationModel::Prediction in;
  in.bit = 1;
  in.flow_a = 3.25e-8;
  in.flow_b = 3.5e-8;
  in.status = Status::ok();
  Writer w;
  protocol::codec::encode_prediction(w, in);
  Reader r(w.bytes().data(), w.bytes().size());
  SimulationModel::Prediction out;
  ASSERT_TRUE(protocol::codec::decode_prediction(r, &out).is_ok());
  EXPECT_EQ(out.bit, in.bit);
  EXPECT_EQ(out.flow_a, in.flow_a);
  EXPECT_EQ(out.flow_b, in.flow_b);
}

TEST(Codec, AuthResultRoundTrip) {
  protocol::AuthenticationResult in;
  in.accepted = false;
  in.flows_valid = true;
  in.bit_consistent = true;
  in.in_time = false;
  in.detail = "missed the deadline";
  Writer w;
  protocol::codec::encode_auth_result(w, in);
  Reader r(w.bytes().data(), w.bytes().size());
  protocol::AuthenticationResult out;
  ASSERT_TRUE(protocol::codec::decode_auth_result(r, &out).is_ok());
  EXPECT_EQ(out.accepted, in.accepted);
  EXPECT_EQ(out.flows_valid, in.flows_valid);
  EXPECT_EQ(out.bit_consistent, in.bit_consistent);
  EXPECT_EQ(out.in_time, in.in_time);
  EXPECT_EQ(out.detail, in.detail);
}

TEST(Codec, TrailingGarbageIsNotExhausted) {
  Writer w;
  protocol::codec::encode_challenge(w, sample_challenge());
  w.u8(0xff);  // one stray byte
  Reader r(w.bytes().data(), w.bytes().size());
  Challenge out;
  ASSERT_TRUE(protocol::codec::decode_challenge(r, &out).is_ok());
  EXPECT_FALSE(r.exhausted());
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Codec, ReaderIsStickyAfterFailure) {
  const std::vector<std::uint8_t> two = {0x01, 0x02};
  Reader r(two.data(), two.size());
  std::uint64_t v = 0;
  EXPECT_FALSE(r.u64(&v));  // over-read attempt
  EXPECT_TRUE(r.failed());
  std::uint8_t b = 0;
  EXPECT_FALSE(r.u8(&b));  // sticky: even in-bounds reads fail now
}

// -------------------------------------------------------------- report files

TEST(CodecFiles, ChainedReportFileRoundTrip) {
  const protocol::ChainedReport in = sample_chained_report();
  std::stringstream file;
  protocol::codec::write_chained_report(file, in);
  protocol::ChainedReport out;
  ASSERT_TRUE(protocol::codec::read_chained_report(file, &out).is_ok());
  ASSERT_EQ(out.rounds.size(), in.rounds.size());
  EXPECT_EQ(out.rounds[0].flow_a, in.rounds[0].flow_a);
  EXPECT_EQ(out.status.code(), in.status.code());
}

TEST(CodecFiles, WireAndFileShareOneEncoding) {
  // The satellite invariant: a report saved to disk and a report framed
  // for the wire must be byte-identical payloads.
  const protocol::ChainedReport report = sample_chained_report();
  Writer w;
  protocol::codec::encode_chained_report(w, report);
  std::stringstream file;
  protocol::codec::write_chained_report(file, report);
  const std::string on_disk = file.str();
  const std::string payload(w.bytes().begin(), w.bytes().end());
  ASSERT_GT(on_disk.size(), payload.size());  // file adds magic + length
  EXPECT_NE(on_disk.find(payload), std::string::npos);
}

TEST(CodecFiles, BadMagicIsTypedError) {
  std::stringstream file;
  protocol::codec::write_chained_report(file, sample_chained_report());
  std::string bytes = file.str();
  bytes[0] ^= 0x5a;
  std::stringstream corrupted(bytes);
  protocol::ChainedReport out;
  const Status s = protocol::codec::read_chained_report(corrupted, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CodecFiles, TruncatedFileIsTypedError) {
  std::stringstream file;
  protocol::codec::write_chained_report(file, sample_chained_report());
  const std::string bytes = file.str();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream truncated(bytes.substr(0, len));
    protocol::ChainedReport out;
    const Status s = protocol::codec::read_chained_report(truncated, &out);
    EXPECT_FALSE(s.is_ok()) << "prefix of " << len << " bytes decoded";
  }
}

// ------------------------------------------------------------------ framing

TEST(Wire, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload = net::encode_ping_request(17);
  const std::vector<std::uint8_t> bytes = net::encode_frame(
      MessageType::kPingRequest, 42, 5, 250, payload);
  ASSERT_EQ(bytes.size(), net::kHeaderSize + payload.size());
  Frame f;
  std::size_t consumed = 0;
  ASSERT_EQ(net::decode_frame(bytes.data(), bytes.size(), &f, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(f.type, MessageType::kPingRequest);
  EXPECT_EQ(f.request_id, 42u);
  EXPECT_EQ(f.device_id, 5u);
  EXPECT_EQ(f.budget_ms, 250u);
  EXPECT_EQ(f.payload, payload);
  std::uint32_t delay = 0;
  ASSERT_TRUE(net::decode_ping_request(f.payload, &delay).is_ok());
  EXPECT_EQ(delay, 17u);
}

TEST(Wire, DeviceIdRoundTripsAtFullWidth) {
  // The device id is a full u64 header field: the registry never reuses
  // ids, so a long-lived deployment can reach arbitrary values.
  for (const std::uint64_t id :
       {std::uint64_t{0}, std::uint64_t{1},
        std::uint64_t{0xffffffffull} + 1, ~std::uint64_t{0}}) {
    const std::vector<std::uint8_t> bytes =
        net::encode_frame(MessageType::kChallengeRequest, 1, id, 0,
                          net::encode_challenge_request());
    Frame f;
    std::size_t consumed = 0;
    ASSERT_EQ(net::decode_frame(bytes.data(), bytes.size(), &f, &consumed),
              DecodeResult::kOk);
    EXPECT_EQ(f.device_id, id);
  }
}

TEST(Wire, EmptyPayloadFrame) {
  const std::vector<std::uint8_t> bytes =
      net::encode_frame(MessageType::kPingReply, 7, 0, 0, {});
  Frame f;
  std::size_t consumed = 0;
  ASSERT_EQ(net::decode_frame(bytes.data(), bytes.size(), &f, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, net::kHeaderSize);
  EXPECT_TRUE(f.payload.empty());
}

TEST(Wire, TwoFramesDecodeSequentially) {
  std::vector<std::uint8_t> stream =
      net::encode_frame(MessageType::kPingRequest, 1, 0, 0,
                        net::encode_ping_request(0));
  const std::vector<std::uint8_t> second =
      net::encode_frame(MessageType::kChallengeRequest, 2, 3, 0,
                        net::encode_challenge_request());
  stream.insert(stream.end(), second.begin(), second.end());

  Frame f;
  std::size_t consumed = 0;
  ASSERT_EQ(net::decode_frame(stream.data(), stream.size(), &f, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(f.request_id, 1u);
  const std::size_t first_len = consumed;
  ASSERT_EQ(net::decode_frame(stream.data() + first_len,
                              stream.size() - first_len, &f, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(f.request_id, 2u);
  EXPECT_EQ(f.device_id, 3u);
  EXPECT_EQ(first_len + consumed, stream.size());
}

TEST(Wire, BadMagicIsMalformed) {
  std::vector<std::uint8_t> bytes =
      net::encode_frame(MessageType::kPingRequest, 1, 0, 0, {});
  bytes[0] ^= 0xff;
  Frame f;
  std::size_t consumed = 0;
  EXPECT_EQ(net::decode_frame(bytes.data(), bytes.size(), &f, &consumed),
            DecodeResult::kMalformed);
}

TEST(Wire, UnknownVersionIsMalformed) {
  std::vector<std::uint8_t> bytes =
      net::encode_frame(MessageType::kPingRequest, 1, 0, 0, {});
  bytes[4] = 0x7f;  // version low byte
  Frame f;
  std::size_t consumed = 0;
  EXPECT_EQ(net::decode_frame(bytes.data(), bytes.size(), &f, &consumed),
            DecodeResult::kMalformed);
}

TEST(Wire, OversizedPayloadLengthIsMalformed) {
  std::vector<std::uint8_t> bytes =
      net::encode_frame(MessageType::kPingRequest, 1, 0, 0, {});
  // payload_len field: header bytes 28..31, little-endian.
  bytes[28] = 0xff;
  bytes[29] = 0xff;
  bytes[30] = 0xff;
  bytes[31] = 0x7f;
  Frame f;
  std::size_t consumed = 0;
  EXPECT_EQ(net::decode_frame(bytes.data(), bytes.size(), &f, &consumed),
            DecodeResult::kMalformed);
}

TEST(Wire, ErrorReplyRoundTrip) {
  net::ErrorReply in;
  in.code = WireCode::kOverloaded;
  in.message = "64 in flight";
  const std::vector<std::uint8_t> payload = net::encode_error_reply(in);
  net::ErrorReply out;
  ASSERT_TRUE(net::decode_error_reply(payload, &out).is_ok());
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.message, in.message);
}

TEST(Wire, PingReplyHealthRoundTrip) {
  net::HealthInfo in;
  in.inflight = 7;
  in.max_inflight = 64;
  in.draining = 1;
  in.requests_served = 123456789ull;
  in.connections_accepted = 42;
  const std::vector<std::uint8_t> payload = net::encode_ping_reply(in);
  net::HealthInfo out;
  ASSERT_TRUE(net::decode_ping_reply(payload, &out).is_ok());
  EXPECT_EQ(out.inflight, in.inflight);
  EXPECT_EQ(out.max_inflight, in.max_inflight);
  EXPECT_EQ(out.draining, in.draining);
  EXPECT_EQ(out.requests_served, in.requests_served);
  EXPECT_EQ(out.connections_accepted, in.connections_accepted);
}

TEST(Wire, PingReplyEmptyPayloadIsLegacyDefaults) {
  // A pre-health server answers PING with an empty payload; the client
  // must accept it as an all-defaults health report, not a typed error.
  net::HealthInfo out;
  out.inflight = 99;
  ASSERT_TRUE(net::decode_ping_reply({}, &out).is_ok());
  EXPECT_EQ(out.inflight, 0u);
  EXPECT_EQ(out.draining, 0);
}

TEST(Wire, PingReplyTruncationIsTypedError) {
  net::HealthInfo in;
  in.inflight = 3;
  in.max_inflight = 8;
  in.requests_served = 17;
  in.connections_accepted = 2;
  in.device_count = 12;
  in.wal_epoch = 0x99;
  in.wal_offset = 512;
  const std::vector<std::uint8_t> payload = net::encode_ping_reply(in);
  // The reply has exactly two legal lengths: the pre-fleet core (25
  // bytes: inflight, max_inflight, draining, requests, connections) and
  // the full fleet form (core + device_count/wal_epoch/wal_offset).  Any
  // other strict prefix is a typed error; a partial fleet block must not
  // half-decode.
  constexpr std::size_t kLegacyLen = 4 + 4 + 1 + 8 + 8;
  ASSERT_GT(payload.size(), kLegacyLen);
  for (std::size_t len = 1; len < payload.size(); ++len) {
    const std::vector<std::uint8_t> cut(payload.begin(),
                                        payload.begin() + len);
    net::HealthInfo out;
    if (len == kLegacyLen) {
      ASSERT_TRUE(net::decode_ping_reply(cut, &out).is_ok());
      EXPECT_EQ(out.requests_served, in.requests_served);
      EXPECT_EQ(out.device_count, 0u);  // fleet fields default, not junk
      EXPECT_EQ(out.wal_epoch, 0u);
      continue;
    }
    EXPECT_FALSE(net::decode_ping_reply(cut, &out).is_ok())
        << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is rejected too: decoders consume bytes exactly.
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  net::HealthInfo out;
  EXPECT_FALSE(net::decode_ping_reply(padded, &out).is_ok());
}

TEST(Wire, EnrollRequestTruncationIsTypedError) {
  net::EnrollRequestBody in;
  in.node_count = 24;
  in.grid_size = 6;
  in.fabrication_seed = 0x1234567890abcdefull;
  in.label = "fuzz-card";
  in.backend = static_cast<std::uint8_t>(backend::BackendKind::kPdlDelay);
  const std::vector<std::uint8_t> payload = net::encode_enroll_request(in);
  // Like ping_reply, the request has exactly two legal lengths: the v1
  // body (node_count, grid_size, seed, label — implies max-flow) and the
  // full tagged form.  Every other strict prefix is a typed error.
  const std::size_t v1_len = payload.size() - 1;
  for (std::size_t len = 1; len < payload.size(); ++len) {
    const std::vector<std::uint8_t> cut(payload.begin(),
                                        payload.begin() + len);
    net::EnrollRequestBody out;
    const Status s = net::decode_enroll_request(cut, &out);
    if (len == v1_len) {
      ASSERT_TRUE(s.is_ok()) << "v1 prefix must decode";
      EXPECT_EQ(out.backend, 1);  // untagged means max-flow
      EXPECT_EQ(out.label, in.label);
      continue;
    }
    EXPECT_FALSE(s.is_ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument)
        << "prefix " << len << " not a typed error";
  }
  // Trailing garbage after the backend byte is rejected.
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  net::EnrollRequestBody out;
  EXPECT_FALSE(net::decode_enroll_request(padded, &out).is_ok());
}

TEST(Wire, ChallengeGrantRoundTrip) {
  const net::ChallengeGrant in = sample_grant();
  const std::vector<std::uint8_t> payload = net::encode_challenge_reply(in);
  net::ChallengeGrant out;
  ASSERT_TRUE(net::decode_challenge_reply(payload, &out).is_ok());
  EXPECT_EQ(out.challenge, in.challenge);
  EXPECT_EQ(out.chain_length, in.chain_length);
  EXPECT_EQ(out.nonce, in.nonce);
  EXPECT_EQ(out.deadline_seconds, in.deadline_seconds);
}

TEST(Wire, ChainedAuthRequestRoundTrip) {
  net::ChainedAuthRequest in;
  in.grant = sample_grant();
  in.report = sample_chained_report();
  const std::vector<std::uint8_t> payload =
      net::encode_chained_auth_request(in);
  net::ChainedAuthRequest out;
  ASSERT_TRUE(net::decode_chained_auth_request(payload, &out).is_ok());
  EXPECT_EQ(out.grant.nonce, in.grant.nonce);
  EXPECT_EQ(out.report.rounds.size(), in.report.rounds.size());
}

TEST(Wire, VerifyBatchRoundTrip) {
  const std::vector<Challenge> challenges{sample_challenge(),
                                          sample_challenge()};
  const std::vector<protocol::ProverReport> reports{sample_report(),
                                                    sample_report()};
  const std::vector<std::uint8_t> payload =
      net::encode_verify_batch_request(challenges, reports);
  std::vector<Challenge> out_c;
  std::vector<protocol::ProverReport> out_r;
  ASSERT_TRUE(
      net::decode_verify_batch_request(payload, &out_c, &out_r).is_ok());
  ASSERT_EQ(out_c.size(), 2u);
  ASSERT_EQ(out_r.size(), 2u);
  EXPECT_EQ(out_c[0], challenges[0]);
  EXPECT_EQ(out_r[1].flow_b, reports[1].flow_b);
}

TEST(Wire, OversizedPayloadBecomesTypedErrorFrame) {
  // encode_frame must never emit a frame the receiver is guaranteed to
  // reject (which desynchronises the stream): an oversized payload is
  // replaced by a typed kInternal error carrying the same request id.
  const std::vector<std::uint8_t> huge(net::kMaxPayload + 1, 0xab);
  const std::vector<std::uint8_t> bytes =
      net::encode_frame(MessageType::kVerifyBatchReply, 42, 0, 7, huge);
  Frame f;
  std::size_t consumed = 0;
  ASSERT_EQ(net::decode_frame(bytes.data(), bytes.size(), &f, &consumed),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(f.type, MessageType::kErrorReply);
  EXPECT_EQ(f.request_id, 42u);
  net::ErrorReply err;
  ASSERT_TRUE(net::decode_error_reply(f.payload, &err).is_ok());
  EXPECT_EQ(err.code, WireCode::kInternal);
}

TEST(Wire, VerifyBatchEncoderClampsMismatchedLengths) {
  // The encoder is bounded by BOTH vectors: a mismatched caller gets the
  // common prefix, never an out-of-bounds read of the shorter one.
  const std::vector<Challenge> challenges{sample_challenge(),
                                          sample_challenge(),
                                          sample_challenge()};
  const std::vector<protocol::ProverReport> reports{sample_report()};
  const std::vector<std::uint8_t> payload =
      net::encode_verify_batch_request(challenges, reports);
  std::vector<Challenge> out_c;
  std::vector<protocol::ProverReport> out_r;
  ASSERT_TRUE(
      net::decode_verify_batch_request(payload, &out_c, &out_r).is_ok());
  EXPECT_EQ(out_c.size(), 1u);
  EXPECT_EQ(out_r.size(), 1u);
}

TEST(Wire, WireCodeMapping) {
  using util::StatusCode;
  EXPECT_EQ(net::wire_code_to_status(WireCode::kUnknownDevice, "x").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(net::wire_code_to_status(WireCode::kOverloaded, "x").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(net::wire_code_to_status(WireCode::kShuttingDown, "x").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(net::wire_code_to_status(WireCode::kDeadlineExceeded, "x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(net::wire_code_to_status(WireCode::kInvalidArgument, "x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(net::wire_code_to_status(WireCode::kOk, "").code(),
            StatusCode::kOk);
  // Fleet routing: a shard the gateway cannot serve is retryable (the
  // client re-resolves), hence kUnavailable, not a hard error.
  EXPECT_EQ(net::wire_code_to_status(WireCode::kShardUnavailable, "x").code(),
            StatusCode::kUnavailable);
}

// ------------------------------------------------------- fleet wire bodies

net::AdminRequestBody sample_admin_request() {
  net::AdminRequestBody a;
  a.op = net::AdminOp::kDrainShard;
  a.shard = "shard-07";
  a.host = "10.0.0.7";
  a.port = 7007;
  return a;
}

net::AdminReplyBody sample_admin_reply() {
  net::AdminReplyBody a;
  a.ok = 1;
  a.message = "drained";
  net::ShardStatus s;
  s.name = "shard-07";
  s.host = "10.0.0.7";
  s.port = 7007;
  s.state = 2;
  s.draining = 1;
  s.inflight = 3;
  s.pinned_sessions = 2;
  s.forwarded = 1234;
  s.device_count = 99;
  s.wal_epoch = 0x1122334455667788ull;
  s.wal_offset = 4096;
  a.shards = {s, s};
  a.shards[1].name = "shard-08";
  return a;
}

TEST(Wire, EnrollBodiesRoundTrip) {
  net::EnrollRequestBody req;
  req.node_count = 24;
  req.grid_size = 6;
  req.fabrication_seed = 0xfeedfacecafebeefull;
  req.label = "rack-3 card-11";
  const std::vector<std::uint8_t> bytes = net::encode_enroll_request(req);
  net::EnrollRequestBody back;
  ASSERT_TRUE(net::decode_enroll_request(bytes, &back).is_ok());
  EXPECT_EQ(back.node_count, req.node_count);
  EXPECT_EQ(back.grid_size, req.grid_size);
  EXPECT_EQ(back.fabrication_seed, req.fabrication_seed);
  EXPECT_EQ(back.label, req.label);
  EXPECT_EQ(back.backend, 1);  // default tag survives the round trip

  // A PDL-tagged request round-trips its backend byte; PDL geometry uses
  // chain-stage units, so the max-flow grid<=nodes rule must not apply.
  net::EnrollRequestBody pdl = req;
  pdl.backend = static_cast<std::uint8_t>(backend::BackendKind::kPdlDelay);
  pdl.node_count = 64;  // stages
  pdl.grid_size = 4;    // XORed instances
  net::EnrollRequestBody pdl_back;
  ASSERT_TRUE(
      net::decode_enroll_request(net::encode_enroll_request(pdl), &pdl_back)
          .is_ok());
  EXPECT_EQ(pdl_back.backend, pdl.backend);
  EXPECT_EQ(pdl_back.node_count, pdl.node_count);
  EXPECT_EQ(pdl_back.grid_size, pdl.grid_size);

  // Backend byte 0 is reserved: an uninitialised byte never aliases a
  // real backend.  Unknown non-zero tags pass the wire layer (the server
  // answers a typed error) — forward compatibility, not silent rejection.
  std::vector<std::uint8_t> zero_tag = net::encode_enroll_request(req);
  zero_tag.back() = 0;
  EXPECT_EQ(net::decode_enroll_request(zero_tag, &back).code(),
            StatusCode::kInvalidArgument);
  std::vector<std::uint8_t> future_tag = net::encode_enroll_request(pdl);
  future_tag.back() = 0x7f;
  ASSERT_TRUE(net::decode_enroll_request(future_tag, &back).is_ok());
  EXPECT_EQ(back.backend, 0x7f);

  net::EnrollReplyBody reply;
  reply.device_id = 0xffffffffffffff01ull;  // full 64-bit width survives
  net::EnrollReplyBody reply_back;
  ASSERT_TRUE(
      net::decode_enroll_reply(net::encode_enroll_reply(reply), &reply_back)
          .is_ok());
  EXPECT_EQ(reply_back.device_id, reply.device_id);
}

TEST(Wire, AdminBodiesRoundTrip) {
  const net::AdminRequestBody req = sample_admin_request();
  net::AdminRequestBody req_back;
  ASSERT_TRUE(
      net::decode_admin_request(net::encode_admin_request(req), &req_back)
          .is_ok());
  EXPECT_EQ(req_back.op, req.op);
  EXPECT_EQ(req_back.shard, req.shard);
  EXPECT_EQ(req_back.host, req.host);
  EXPECT_EQ(req_back.port, req.port);

  const net::AdminReplyBody reply = sample_admin_reply();
  net::AdminReplyBody reply_back;
  ASSERT_TRUE(
      net::decode_admin_reply(net::encode_admin_reply(reply), &reply_back)
          .is_ok());
  EXPECT_EQ(reply_back.ok, reply.ok);
  EXPECT_EQ(reply_back.message, reply.message);
  ASSERT_EQ(reply_back.shards.size(), 2u);
  EXPECT_EQ(reply_back.shards[0].name, "shard-07");
  EXPECT_EQ(reply_back.shards[1].name, "shard-08");
  EXPECT_EQ(reply_back.shards[0].state, reply.shards[0].state);
  EXPECT_EQ(reply_back.shards[0].wal_epoch, reply.shards[0].wal_epoch);
  EXPECT_EQ(reply_back.shards[0].pinned_sessions,
            reply.shards[0].pinned_sessions);
}

TEST(Wire, WalShippingBodiesRoundTrip) {
  net::WalFetchRequestBody req;
  req.epoch = 0xaabbccdd11223344ull;
  req.offset = 1 << 20;
  req.max_bytes = 65536;
  net::WalFetchRequestBody req_back;
  ASSERT_TRUE(net::decode_wal_fetch_request(
                  net::encode_wal_fetch_request(req), &req_back)
                  .is_ok());
  EXPECT_EQ(req_back.epoch, req.epoch);
  EXPECT_EQ(req_back.offset, req.offset);
  EXPECT_EQ(req_back.max_bytes, req.max_bytes);

  net::WalSegmentBody seg;
  seg.bootstrap = 1;
  seg.epoch = req.epoch;
  seg.next_offset = 77;
  seg.bytes = {0x01, 0x02, 0x00, 0xff, 0x7f};
  net::WalSegmentBody seg_back;
  ASSERT_TRUE(net::decode_wal_segment_reply(
                  net::encode_wal_segment_reply(seg), &seg_back)
                  .is_ok());
  EXPECT_EQ(seg_back.bootstrap, seg.bootstrap);
  EXPECT_EQ(seg_back.epoch, seg.epoch);
  EXPECT_EQ(seg_back.next_offset, seg.next_offset);
  EXPECT_EQ(seg_back.bytes, seg.bytes);
}

TEST(Wire, RedirectReplyRoundTrip) {
  net::RedirectReplyBody r;
  r.host = "10.1.2.3";
  r.port = 31337;
  r.shard = "shard-replacement";
  r.message = "draining toward successor";
  net::RedirectReplyBody back;
  ASSERT_TRUE(
      net::decode_redirect_reply(net::encode_redirect_reply(r), &back)
          .is_ok());
  EXPECT_EQ(back.host, r.host);
  EXPECT_EQ(back.port, r.port);
  EXPECT_EQ(back.shard, r.shard);
  EXPECT_EQ(back.message, r.message);
}

TEST(Wire, FleetMessageTypesAreNamedAndClassified) {
  using net::is_request;
  using net::message_type_name;
  for (MessageType t : {MessageType::kEnrollRequest,
                        MessageType::kAdminRequest,
                        MessageType::kWalFetchRequest}) {
    EXPECT_TRUE(is_request(t)) << message_type_name(t);
    EXPECT_STRNE(message_type_name(t), "UNKNOWN");
  }
  for (MessageType t : {MessageType::kEnrollReply, MessageType::kAdminReply,
                        MessageType::kWalSegmentReply,
                        MessageType::kRedirectReply}) {
    EXPECT_FALSE(is_request(t)) << message_type_name(t);
    EXPECT_STRNE(message_type_name(t), "UNKNOWN");
  }
}

// ----------------------------------------------------------------- fuzzing

/// One named payload decoder driven over adversarial bytes.
struct PayloadCase {
  const char* name;
  std::vector<std::uint8_t> valid;
  std::function<Status(const std::vector<std::uint8_t>&)> decode;
};

std::vector<PayloadCase> payload_cases() {
  std::vector<PayloadCase> cases;
  cases.push_back({"ping_request", net::encode_ping_request(250),
                   [](const std::vector<std::uint8_t>& p) {
                     std::uint32_t d = 0;
                     return net::decode_ping_request(p, &d);
                   }});
  cases.push_back({"predict_request",
                   net::encode_predict_request(sample_challenge()),
                   [](const std::vector<std::uint8_t>& p) {
                     Challenge c;
                     return net::decode_predict_request(p, &c);
                   }});
  cases.push_back({"verify_request",
                   net::encode_verify_request(sample_challenge(),
                                              sample_report()),
                   [](const std::vector<std::uint8_t>& p) {
                     Challenge c;
                     protocol::ProverReport r;
                     return net::decode_verify_request(p, &c, &r);
                   }});
  cases.push_back(
      {"verify_batch_request",
       net::encode_verify_batch_request({sample_challenge()},
                                        {sample_report()}),
       [](const std::vector<std::uint8_t>& p) {
         std::vector<Challenge> c;
         std::vector<protocol::ProverReport> r;
         return net::decode_verify_batch_request(p, &c, &r);
       }});
  cases.push_back({"challenge_reply",
                   net::encode_challenge_reply(sample_grant()),
                   [](const std::vector<std::uint8_t>& p) {
                     net::ChallengeGrant g;
                     return net::decode_challenge_reply(p, &g);
                   }});
  net::ChainedAuthRequest chained;
  chained.grant = sample_grant();
  chained.report = sample_chained_report();
  cases.push_back({"chained_auth_request",
                   net::encode_chained_auth_request(chained),
                   [](const std::vector<std::uint8_t>& p) {
                     net::ChainedAuthRequest r;
                     return net::decode_chained_auth_request(p, &r);
                   }});
  net::ErrorReply err;
  err.code = WireCode::kDeadlineExceeded;
  err.message = "late";
  cases.push_back({"error_reply", net::encode_error_reply(err),
                   [](const std::vector<std::uint8_t>& p) {
                     net::ErrorReply e;
                     return net::decode_error_reply(p, &e);
                   }});
  // Fleet codecs (gateway admin, enrollment, WAL shipping, redirects) ride
  // the same harness: each one is parsed by a gateway or shard straight
  // off adversary-reachable sockets.  ping_reply and enroll_request stay
  // OUT of this list — their trailing fields are deliberately optional
  // (health block / backend tag), so one prefix of each legally decodes.
  // They get dedicated truncation tests instead.
  {
    net::EnrollReplyBody e;
    e.device_id = 42;
    cases.push_back({"enroll_reply", net::encode_enroll_reply(e),
                     [](const std::vector<std::uint8_t>& p) {
                       net::EnrollReplyBody out;
                       return net::decode_enroll_reply(p, &out);
                     }});
  }
  cases.push_back({"admin_request",
                   net::encode_admin_request(sample_admin_request()),
                   [](const std::vector<std::uint8_t>& p) {
                     net::AdminRequestBody out;
                     return net::decode_admin_request(p, &out);
                   }});
  cases.push_back({"admin_reply",
                   net::encode_admin_reply(sample_admin_reply()),
                   [](const std::vector<std::uint8_t>& p) {
                     net::AdminReplyBody out;
                     return net::decode_admin_reply(p, &out);
                   }});
  {
    net::WalFetchRequestBody f;
    f.epoch = 0x55aa55aa55aa55aaull;
    f.offset = 8192;
    f.max_bytes = 1024;
    cases.push_back({"wal_fetch_request", net::encode_wal_fetch_request(f),
                     [](const std::vector<std::uint8_t>& p) {
                       net::WalFetchRequestBody out;
                       return net::decode_wal_fetch_request(p, &out);
                     }});
  }
  {
    net::WalSegmentBody s;
    s.bootstrap = 0;
    s.epoch = 0x77;
    s.next_offset = 131072;
    s.bytes = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
    cases.push_back({"wal_segment_reply", net::encode_wal_segment_reply(s),
                     [](const std::vector<std::uint8_t>& p) {
                       net::WalSegmentBody out;
                       return net::decode_wal_segment_reply(p, &out);
                     }});
  }
  {
    net::RedirectReplyBody r;
    r.host = "192.0.2.9";
    r.port = 9009;
    r.shard = "s9";
    r.message = "moved";
    cases.push_back({"redirect_reply", net::encode_redirect_reply(r),
                     [](const std::vector<std::uint8_t>& p) {
                       net::RedirectReplyBody out;
                       return net::decode_redirect_reply(p, &out);
                     }});
  }
  return cases;
}

// Registry persistence bodies ride the same fuzz harness as wire
// payloads: a registry file is exactly as attacker-reachable as a socket.

SimulationModel sample_model() {
  PpufParams params;
  params.node_count = 6;
  params.grid_size = 3;
  MaxFlowPpuf puf(params, 99);
  return SimulationModel(puf);
}

registry::DeviceEntry sample_entry() {
  registry::DeviceEntry e;
  e.id = 11;
  e.nodes = 6;
  e.grid = 3;
  e.label = "card-A";
  Writer w;
  protocol::codec::encode_sim_model(w, sample_model());
  e.model_bytes = w.bytes();
  return e;
}

registry::DeviceEntry sample_pdl_entry() {
  registry::DeviceEntry e;
  e.id = 12;
  e.nodes = 16;  // chain stages
  e.grid = 2;    // XORed instances
  e.label = "pdl-A";
  e.backend = backend::BackendKind::kPdlDelay;
  const backend::PufBackend* pdl =
      backend::find_backend(backend::BackendKind::kPdlDelay);
  backend::FabricateRequest req;
  req.node_count = 16;
  req.grid_size = 2;
  req.seed = 77;
  EXPECT_TRUE(pdl->fabricate(req, nullptr, &e.model_bytes).is_ok());
  return e;
}

std::vector<PayloadCase> registry_payload_cases() {
  std::vector<PayloadCase> cases;
  {
    Writer w;
    protocol::codec::encode_sim_model(w, sample_model());
    cases.push_back({"sim_model", w.bytes(),
                     [](const std::vector<std::uint8_t>& p) {
                       Reader r(p.data(), p.size());
                       SimulationModel m;
                       Status s = protocol::codec::decode_sim_model(r, &m);
                       if (s.is_ok() && !r.exhausted())
                         s = Status::invalid_argument("trailing bytes");
                       return s;
                     }});
  }
  {
    Writer w;
    registry::encode_device_entry(w, sample_entry());
    cases.push_back({"device_entry", w.bytes(),
                     [](const std::vector<std::uint8_t>& p) {
                       Reader r(p.data(), p.size());
                       registry::DeviceEntry e;
                       Status s = registry::decode_device_entry(r, &e);
                       if (s.is_ok() && !r.exhausted())
                         s = Status::invalid_argument("trailing bytes");
                       return s;
                     }});
  }
  {
    registry::WalRecord rec;
    rec.type = registry::WalRecord::Type::kEnroll;
    rec.entry = sample_entry();
    Writer w;
    registry::encode_wal_record(w, rec);
    cases.push_back({"wal_record", w.bytes(),
                     [](const std::vector<std::uint8_t>& p) {
                       Reader r(p.data(), p.size());
                       registry::WalRecord out;
                       return registry::decode_wal_record(r, &out);
                     }});
  }
  {
    registry::SnapshotBody snap;
    snap.next_id = 12;
    snap.entries = {sample_entry()};
    Writer w;
    registry::encode_snapshot_body(w, snap);
    cases.push_back({"snapshot_body", w.bytes(),
                     [](const std::vector<std::uint8_t>& p) {
                       Reader r(p.data(), p.size());
                       registry::SnapshotBody out;
                       Status s = registry::decode_snapshot_body(r, &out);
                       if (s.is_ok() && !r.exhausted())
                         s = Status::invalid_argument("trailing bytes");
                       return s;
                     }});
  }
  // Backend-tagged record formats: a kEnrollTagged WAL record carrying a
  // PDL entry, and a v2 snapshot mixing both backends.  Same contract —
  // truncation at every offset and bit flips stay typed errors.
  {
    registry::WalRecord rec;
    rec.type = registry::WalRecord::Type::kEnrollTagged;
    rec.entry = sample_pdl_entry();
    Writer w;
    registry::encode_wal_record(w, rec);
    cases.push_back({"wal_record_tagged_pdl", w.bytes(),
                     [](const std::vector<std::uint8_t>& p) {
                       Reader r(p.data(), p.size());
                       registry::WalRecord out;
                       return registry::decode_wal_record(r, &out);
                     }});
  }
  {
    registry::SnapshotBody snap;
    snap.next_id = 13;
    snap.entries = {sample_entry(), sample_pdl_entry()};
    Writer w;
    registry::encode_snapshot_body(w, snap, 2);
    cases.push_back({"snapshot_body_v2_mixed", w.bytes(),
                     [](const std::vector<std::uint8_t>& p) {
                       Reader r(p.data(), p.size());
                       registry::SnapshotBody out;
                       Status s =
                           registry::decode_snapshot_body(r, &out, 2);
                       if (s.is_ok() && !r.exhausted())
                         s = Status::invalid_argument("trailing bytes");
                       return s;
                     }});
  }
  return cases;
}

std::vector<PayloadCase> all_payload_cases() {
  std::vector<PayloadCase> cases = payload_cases();
  std::vector<PayloadCase> reg = registry_payload_cases();
  cases.insert(cases.end(), std::make_move_iterator(reg.begin()),
               std::make_move_iterator(reg.end()));
  return cases;
}

TEST(WireFuzz, TruncationAtEveryOffsetIsTypedError) {
  for (const PayloadCase& pc : all_payload_cases()) {
    ASSERT_FALSE(pc.valid.empty()) << pc.name;
    // Sanity: the untruncated payload decodes.
    ASSERT_TRUE(pc.decode(pc.valid).is_ok()) << pc.name;
    for (std::size_t len = 0; len < pc.valid.size(); ++len) {
      const std::vector<std::uint8_t> prefix(pc.valid.begin(),
                                             pc.valid.begin() +
                                                 static_cast<long>(len));
      const Status s = pc.decode(prefix);
      // A strict prefix can never decode: decoders demand exact
      // consumption, and the decode path is deterministic in the bytes.
      EXPECT_FALSE(s.is_ok())
          << pc.name << " decoded from a " << len << "-byte prefix";
      EXPECT_EQ(s.code(), StatusCode::kInvalidArgument)
          << pc.name << " at prefix " << len;
    }
  }
}

TEST(WireFuzz, BitFlipAtEveryOffsetNeverCrashes) {
  for (const PayloadCase& pc : all_payload_cases()) {
    // All 8 flips per byte for small messages; one rotating flip per byte
    // for large ones (keeps the ASan run fast without losing coverage of
    // every offset).
    const int flips_per_byte = pc.valid.size() <= 256 ? 8 : 1;
    for (std::size_t off = 0; off < pc.valid.size(); ++off) {
      for (int b = 0; b < flips_per_byte; ++b) {
        std::vector<std::uint8_t> mutated = pc.valid;
        mutated[off] ^= static_cast<std::uint8_t>(
            1u << (flips_per_byte == 8 ? b : off % 8));
        // Either a clean decode of different values or a typed error —
        // never a crash or over-read (ASan enforces the latter).
        const Status s = pc.decode(mutated);
        if (!s.is_ok()) {
          EXPECT_EQ(s.code(), StatusCode::kInvalidArgument)
              << pc.name << " offset " << off;
        }
      }
    }
  }
}

TEST(WireFuzz, FrameTruncationNeedsMoreAtEveryOffset) {
  const std::vector<std::uint8_t> frame = net::encode_frame(
      MessageType::kVerifyRequest, 9, 2, 125,
      net::encode_verify_request(sample_challenge(), sample_report()));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    Frame f;
    std::size_t consumed = 0;
    EXPECT_EQ(net::decode_frame(frame.data(), len, &f, &consumed),
              DecodeResult::kNeedMore)
        << "prefix " << len;
  }
}

TEST(WireFuzz, FrameBitFlipNeverCrashesOrOverconsumes) {
  const std::vector<std::uint8_t> frame = net::encode_frame(
      MessageType::kChainedAuthRequest, 1234, 77, 0, [] {
        net::ChainedAuthRequest r;
        r.grant = sample_grant();
        r.report = sample_chained_report();
        return net::encode_chained_auth_request(r);
      }());
  for (std::size_t off = 0; off < frame.size(); ++off) {
    for (int b = 0; b < 8; ++b) {
      std::vector<std::uint8_t> mutated = frame;
      mutated[off] ^= static_cast<std::uint8_t>(1u << b);
      Frame f;
      std::size_t consumed = 0;
      const DecodeResult r =
          net::decode_frame(mutated.data(), mutated.size(), &f, &consumed);
      if (r == DecodeResult::kOk) {
        EXPECT_LE(consumed, mutated.size()) << "offset " << off;
        // A frame that still parses hands its payload to the typed
        // decoder, which must also hold the no-crash contract.
        net::ChainedAuthRequest out;
        (void)net::decode_chained_auth_request(f.payload, &out);
      }
    }
  }
}

// ------------------------------------------------------ registry record frames

TEST(RegistryFuzz, RecordTruncationAtEveryOffsetIsNeedMore) {
  registry::WalRecord rec;
  rec.entry = sample_entry();
  const std::vector<std::uint8_t> frame = registry::frame_record(rec);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    std::size_t consumed = 1;
    std::vector<std::uint8_t> body;
    std::string error;
    // Every strict prefix is indistinguishable from a torn tail write:
    // recovery must see kNeedMore (truncate at EOF), never kCorrupt.
    EXPECT_EQ(registry::extract_record(frame.data(), len, &consumed, &body,
                                       &error),
              registry::ExtractStatus::kNeedMore)
        << "prefix " << len;
    EXPECT_EQ(consumed, 0u);
  }
  std::size_t consumed = 0;
  std::vector<std::uint8_t> body;
  std::string error;
  ASSERT_EQ(registry::extract_record(frame.data(), frame.size(), &consumed,
                                     &body, &error),
            registry::ExtractStatus::kOk);
  EXPECT_EQ(consumed, frame.size());
  Reader r(body.data(), body.size());
  registry::WalRecord out;
  ASSERT_TRUE(registry::decode_wal_record(r, &out).is_ok());
  EXPECT_EQ(out.entry.id, rec.entry.id);
}

TEST(RegistryFuzz, RecordBitFlipAtEveryByteIsDetected) {
  registry::WalRecord rec;
  rec.entry = sample_entry();
  const std::vector<std::uint8_t> frame = registry::frame_record(rec);
  for (std::size_t off = 0; off < frame.size(); ++off) {
    std::vector<std::uint8_t> mutated = frame;
    mutated[off] ^= static_cast<std::uint8_t>(1u << (off % 8));
    std::size_t consumed = 0;
    std::vector<std::uint8_t> body;
    std::string error;
    const registry::ExtractStatus s = registry::extract_record(
        mutated.data(), mutated.size(), &consumed, &body, &error);
    // A flipped body byte fails the CRC; a flipped header byte fails the
    // magic or yields a length that no longer fits (kNeedMore).  A flip
    // can never extract a record with the original content.
    EXPECT_NE(s, registry::ExtractStatus::kOk) << "offset " << off;
  }
}

TEST(RegistryFuzz, SnapshotBitFlipAtEveryByteIsTypedError) {
  registry::SnapshotBody snap;
  snap.next_id = 42;
  snap.entries = {sample_entry()};
  const std::vector<std::uint8_t> image = registry::frame_snapshot(snap);
  {
    registry::SnapshotBody out;
    ASSERT_TRUE(
        registry::parse_snapshot(image.data(), image.size(), &out).is_ok());
    EXPECT_EQ(out.next_id, 42u);
  }
  for (std::size_t len = 0; len < image.size(); ++len) {
    registry::SnapshotBody out;
    EXPECT_FALSE(
        registry::parse_snapshot(image.data(), len, &out).is_ok())
        << "prefix " << len;
  }
  for (std::size_t off = 0; off < image.size(); ++off) {
    std::vector<std::uint8_t> mutated = image;
    mutated[off] ^= static_cast<std::uint8_t>(1u << (off % 8));
    registry::SnapshotBody out;
    const Status s =
        registry::parse_snapshot(mutated.data(), mutated.size(), &out);
    // A snapshot is read whole, so every flip — header or body — must
    // surface as the typed corruption error.
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "offset " << off;
  }
}

TEST(RegistryFuzz, SimModelDecodeRejectsHostileGeometry) {
  // A forged node count must be rejected by arithmetic against the
  // remaining bytes, not by attempting the allocation.
  Writer w;
  w.u32(50000);  // nodes -> ~2.5e9 edges if believed
  w.u32(8);      // grid
  w.f64(0.0);    // comparator offset
  Reader r(w.bytes().data(), w.bytes().size());
  SimulationModel m;
  const Status s = protocol::codec::decode_sim_model(r, &m);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RegistryFuzz, Crc32cKnownAnswer) {
  // RFC 3720 test vector for CRC-32C (Castagnoli).
  const char* text = "123456789";
  EXPECT_EQ(util::crc32c(text, 9), 0xE3069283u);
  // Chaining across a split must equal the one-shot digest.
  const std::uint32_t first = util::crc32c(text, 4);
  EXPECT_EQ(util::crc32c(text + 4, 5, first), 0xE3069283u);
  EXPECT_EQ(util::crc32c(nullptr, 0), 0u);
}

}  // namespace
}  // namespace ppuf
