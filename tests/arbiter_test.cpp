// Tests for the arbiter-PUF baseline used by the Fig. 10 comparison.
#include <gtest/gtest.h>

#include "attack/harness.hpp"
#include "attack/lssvm.hpp"
#include "puf/arbiter.hpp"
#include "util/statistics.hpp"

namespace ppuf::puf {
namespace {

std::vector<std::uint8_t> random_challenge(std::size_t k, util::Rng& rng) {
  std::vector<std::uint8_t> c(k);
  for (auto& b : c) b = rng.coin() ? 1 : 0;
  return c;
}

TEST(Arbiter, DeterministicPerSeed) {
  const ArbiterPuf a(64, 9);
  const ArbiterPuf b(64, 9);
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto c = random_challenge(64, rng);
    EXPECT_EQ(a.evaluate(c), b.evaluate(c));
  }
}

TEST(Arbiter, InstancesDiffer) {
  const ArbiterPuf a(64, 1);
  const ArbiterPuf b(64, 2);
  util::Rng rng(2);
  int agree = 0;
  for (int i = 0; i < 200; ++i) {
    const auto c = random_challenge(64, rng);
    agree += a.evaluate(c) == b.evaluate(c) ? 1 : 0;
  }
  EXPECT_GT(agree, 50);
  EXPECT_LT(agree, 150);  // ~50% agreement between random instances
}

TEST(Arbiter, ResponsesRoughlyBalanced) {
  const ArbiterPuf a(64, 3);
  util::Rng rng(3);
  int ones = 0;
  for (int i = 0; i < 400; ++i)
    ones += a.evaluate(random_challenge(64, rng));
  EXPECT_GT(ones, 120);
  EXPECT_LT(ones, 280);
}

TEST(Arbiter, ParityFeaturesStructure) {
  const std::vector<std::uint8_t> c{0, 1, 0};
  const auto phi = ArbiterPuf::parity_features(c);
  ASSERT_EQ(phi.size(), 4u);
  EXPECT_DOUBLE_EQ(phi[3], 1.0);
  EXPECT_DOUBLE_EQ(phi[2], 1.0);    // c2=0 -> +1
  EXPECT_DOUBLE_EQ(phi[1], -1.0);   // c1=1 flips
  EXPECT_DOUBLE_EQ(phi[0], -1.0);   // c0=0 keeps
}

TEST(Arbiter, MarginMatchesSignOfResponse) {
  const ArbiterPuf a(32, 5);
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto c = random_challenge(32, rng);
    EXPECT_EQ(a.evaluate(c), a.margin(c) > 0.0 ? 1 : 0);
  }
}

TEST(Arbiter, NoiseFlipsOnlySmallMargins) {
  const ArbiterPuf a(64, 6);
  util::Rng rng(6);
  util::Rng noise(7);
  int flips = 0;
  const int total = 300;
  for (int i = 0; i < total; ++i) {
    const auto c = random_challenge(64, rng);
    flips += a.evaluate(c) != a.evaluate_noisy(c, 0.02, noise) ? 1 : 0;
  }
  EXPECT_GT(flips, 0);
  EXPECT_LT(flips, total / 5);
}

TEST(Arbiter, ChallengeLengthMismatchThrows) {
  const ArbiterPuf a(16, 1);
  EXPECT_THROW(a.evaluate(std::vector<std::uint8_t>(8, 0)),
               std::invalid_argument);
  EXPECT_THROW(ArbiterPuf(0, 1), std::invalid_argument);
}

TEST(Arbiter, LinearAttackOnParityFeaturesLearnsQuickly) {
  // The well-known result that motivates Fig. 10: with the parity feature
  // map, a linear learner clones an arbiter PUF from a few hundred CRPs.
  const std::size_t stages = 64;
  const ArbiterPuf target(stages, 8);
  util::Rng rng(8);
  auto make = [&](std::size_t count) {
    std::vector<std::vector<double>> feats;
    std::vector<int> resp;
    for (std::size_t i = 0; i < count; ++i) {
      const auto c = random_challenge(stages, rng);
      feats.push_back(ArbiterPuf::parity_features(c));
      resp.push_back(target.evaluate(c));
    }
    return attack::from_features(std::move(feats), std::move(resp));
  };
  const attack::Dataset train = make(1500);
  const attack::Dataset test = make(300);
  const attack::LsSvm model(train, attack::make_linear_kernel());
  EXPECT_LT(attack::prediction_error(test, model.predict_all(test)), 0.05);
}

}  // namespace
}  // namespace ppuf::puf
