// Tests for the reliability (BER / majority-vote) analysis.
#include <gtest/gtest.h>

#include "metrics/reliability.hpp"

namespace ppuf::metrics {
namespace {

PpufParams small_params() {
  PpufParams p;
  p.node_count = 8;
  p.grid_size = 4;
  return p;
}

TEST(Reliability, BerIsMonotoneInNoise) {
  MaxFlowPpuf puf(small_params(), 909);
  util::Rng rng(1);
  const auto points = ber_vs_noise(puf, {0.0, 1e-9, 1e-8, 1e-7, 1e-6}, 16,
                                   24, rng);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points[0].bit_error_rate, 0.0);  // no noise, no flips
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i].bit_error_rate + 0.02,
              points[i - 1].bit_error_rate);
  // Extreme noise (far above the ~100 nA margins) approaches a fair coin.
  EXPECT_GT(points.back().bit_error_rate, 0.3);
  EXPECT_LT(points.back().bit_error_rate, 0.7);
}

TEST(Reliability, BerSamplesAccounting) {
  MaxFlowPpuf puf(small_params(), 910);
  util::Rng rng(2);
  const auto points = ber_vs_noise(puf, {1e-9}, 4, 6, rng);
  EXPECT_EQ(points[0].samples, 24u);
}

TEST(Reliability, MajorityVoteRequiresOddVotes) {
  MaxFlowPpuf puf(small_params(), 911);
  util::Rng rng(3);
  const Challenge c = random_challenge(puf.layout(), rng);
  EXPECT_THROW(majority_vote_response(puf, c, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(majority_vote_response(puf, c, 4, rng),
               std::invalid_argument);
  const int r = majority_vote_response(puf, c, 3, rng);
  EXPECT_TRUE(r == 0 || r == 1);
}

TEST(Reliability, MajorityVoteReducesErrors) {
  // Crank the comparator noise so single evaluations flip often, then
  // check that voting suppresses the error rate.
  PpufParams p = small_params();
  p.comparator_noise_sigma = 4e-8;  // comparable to small margins
  MaxFlowPpuf puf(p, 912);
  util::Rng rng(4);

  // Single-shot BER under this noise.
  std::size_t flips = 0;
  const std::size_t trials = 40;
  util::Rng crng(5);
  for (std::size_t i = 0; i < trials; ++i) {
    const Challenge c = random_challenge(puf.layout(), crng);
    const int ref = puf.evaluate(c).bit;
    flips += puf.evaluate(c, circuit::Environment::nominal(), &rng).bit != ref
                 ? 1
                 : 0;
  }
  const double single_ber = static_cast<double>(flips) / trials;

  util::Rng vrng(6);
  const double voted_ber = majority_vote_ber(puf, 9, 24, vrng);
  EXPECT_LE(voted_ber, single_ber + 0.05);
}

}  // namespace
}  // namespace ppuf::metrics
