// Tests for batch (multi-threaded) max-flow solving and the entropy
// metrics.
#include <gtest/gtest.h>

#include "graph/complete.hpp"
#include "maxflow/batch.hpp"
#include "metrics/entropy.hpp"
#include "util/rng.hpp"

namespace ppuf {
namespace {

// -------------------------------------------------------------------- batch

TEST(Batch, EmptyInput) {
  EXPECT_TRUE(maxflow::solve_batch({}, maxflow::Algorithm::kDinic, 4)
                  .empty());
}

TEST(Batch, MatchesSerialResults) {
  util::Rng rng(3);
  std::vector<graph::Digraph> graphs;
  graphs.reserve(10);
  for (int i = 0; i < 10; ++i)
    graphs.push_back(graph::make_complete_uniform(12 + i, rng));
  std::vector<graph::FlowProblem> problems;
  for (const auto& g : graphs)
    problems.push_back(
        {&g, 0, static_cast<graph::VertexId>(g.vertex_count() - 1)});

  const auto serial =
      maxflow::solve_batch(problems, maxflow::Algorithm::kPushRelabel, 1);
  const auto parallel =
      maxflow::solve_batch(problems, maxflow::Algorithm::kPushRelabel, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i].value, parallel[i].value,
                1e-9 * std::max(1.0, serial[i].value));
    EXPECT_EQ(serial[i].edge_flow.size(), parallel[i].edge_flow.size());
  }
}

TEST(Batch, PreservesInputOrder) {
  // Distinguishable instances: a 2-node graph with capacity i.
  std::vector<graph::Digraph> graphs;
  for (int i = 1; i <= 8; ++i) {
    graph::Digraph g(2);
    g.add_edge(0, 1, static_cast<double>(i));
    g.finalize();
    graphs.push_back(std::move(g));
  }
  std::vector<graph::FlowProblem> problems;
  for (const auto& g : graphs) problems.push_back({&g, 0, 1});
  const auto r =
      maxflow::solve_batch(problems, maxflow::Algorithm::kEdmondsKarp, 3);
  for (std::size_t i = 0; i < r.size(); ++i)
    EXPECT_DOUBLE_EQ(r[i].value, static_cast<double>(i + 1));
}

TEST(Batch, PropagatesErrors) {
  // One malformed problem (source == sink) between two good ones: the
  // batch keeps draining and reports the fault as a per-item typed status
  // instead of throwing away the whole batch.
  graph::Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  std::vector<graph::FlowProblem> problems{
      {&g, 0, 1}, {&g, 0, 0}, {&g, 0, 1}};
  const auto r =
      maxflow::solve_batch(problems, maxflow::Algorithm::kDinic, 2);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_TRUE(r[0].ok());
  EXPECT_DOUBLE_EQ(r[0].value, 1.0);
  EXPECT_EQ(r[1].status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r[1].status.message().find("source == sink"),
            std::string::npos);
  EXPECT_TRUE(r[2].ok());
  EXPECT_DOUBLE_EQ(r[2].value, 1.0);
}

// ------------------------------------------------------------------ entropy

using metrics::ResponseMatrix;

TEST(Entropy, BinaryEntropyKnownValues) {
  EXPECT_DOUBLE_EQ(metrics::binary_entropy(0.5), 1.0);
  EXPECT_DOUBLE_EQ(metrics::binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(metrics::binary_entropy(1.0), 0.0);
  EXPECT_NEAR(metrics::binary_entropy(0.25), 0.811278, 1e-6);
  EXPECT_THROW(metrics::binary_entropy(1.5), std::invalid_argument);
}

TEST(Entropy, PerfectlyBalancedPopulation) {
  const ResponseMatrix m{{1, 0}, {0, 1}};  // both challenges split 50/50
  EXPECT_DOUBLE_EQ(metrics::shannon_entropy_per_bit(m), 1.0);
  EXPECT_DOUBLE_EQ(metrics::min_entropy_per_bit(m), 1.0);
}

TEST(Entropy, ConstantResponsesHaveZeroEntropy) {
  const ResponseMatrix m{{1, 0}, {1, 0}, {1, 0}};
  EXPECT_DOUBLE_EQ(metrics::shannon_entropy_per_bit(m), 0.0);
  EXPECT_DOUBLE_EQ(metrics::min_entropy_per_bit(m), 0.0);
}

TEST(Entropy, MinEntropyLowerBoundsShannon) {
  util::Rng rng(5);
  ResponseMatrix m(16, metrics::BitVector(24));
  for (auto& row : m)
    for (auto& b : row) b = rng.uniform() < 0.3 ? 1 : 0;
  const double shannon = metrics::shannon_entropy_per_bit(m);
  const double min_e = metrics::min_entropy_per_bit(m);
  EXPECT_LE(min_e, shannon + 1e-12);
  EXPECT_GT(min_e, 0.0);
}

TEST(Entropy, MutualInformationOfCopiedBitsIsHigh) {
  // Challenge 1 duplicates challenge 0 exactly; 2 is independent-ish.
  util::Rng rng(6);
  ResponseMatrix m(32, metrics::BitVector(3));
  for (auto& row : m) {
    row[0] = rng.coin() ? 1 : 0;
    row[1] = row[0];
    row[2] = rng.coin() ? 1 : 0;
  }
  // Pairs: (0,1) identical -> MI ~ 1 bit; (0,2), (1,2) -> ~0.
  const double mi = metrics::mean_pairwise_mutual_information(m);
  EXPECT_GT(mi, 0.2);
  EXPECT_LT(mi, 0.6);
}

TEST(Entropy, MutualInformationOfIndependentBitsNearZero) {
  util::Rng rng(7);
  ResponseMatrix m(200, metrics::BitVector(8));
  for (auto& row : m)
    for (auto& b : row) b = rng.coin() ? 1 : 0;
  EXPECT_LT(metrics::mean_pairwise_mutual_information(m), 0.05);
}

TEST(Entropy, Validation) {
  EXPECT_THROW(metrics::shannon_entropy_per_bit({}), std::invalid_argument);
  EXPECT_THROW(metrics::mean_pairwise_mutual_information(
                   ResponseMatrix{{1}, {0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppuf
