// Cross-solver differential testing.
//
// Max-flow is unique in VALUE but not in flow assignment, which makes it a
// perfect differential-testing target: five independent implementations
// (Edmonds-Karp, Dinic, push-relabel, the phase-synchronous parallel
// push-relabel, and the capacity-scaling approximate solver at eps = 0)
// must report the same value on the same instance, and every one of their
// flow assignments must pass the residual-graph verifier.  A bug in any
// one solver — or in the verifier — breaks the agreement on some seeded
// random instance long before it would surface in a PPUF-level test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "maxflow/approximate.hpp"
#include "maxflow/parallel_push_relabel.hpp"
#include "maxflow/solver.hpp"
#include "maxflow/verify.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace ppuf::maxflow {
namespace {

/// One named flow answer (value + assignment) from one of the five
/// implementations.
struct SolverAnswer {
  std::string name;
  double value = 0.0;
  std::vector<double> edge_flow;
};

/// Run all five implementations on one instance.
std::vector<SolverAnswer> all_answers(const graph::FlowProblem& problem) {
  std::vector<SolverAnswer> answers;
  for (const Algorithm a : all_algorithms()) {
    const auto solver = make_solver(a);
    const FlowResult r = solver->solve(problem);
    EXPECT_TRUE(r.ok()) << solver->name();
    answers.push_back({solver->name(), r.value, r.edge_flow});
  }
  {
    const ParallelPushRelabel solver(2);
    const FlowResult r = solver.solve(problem);
    EXPECT_TRUE(r.ok()) << solver.name();
    answers.push_back({solver.name(), r.value, r.edge_flow});
  }
  {
    // eps = 0 reduces capacity scaling to an exact algorithm.
    const ApproximateResult r = solve_approximate(problem, 0.0);
    EXPECT_TRUE(r.ok()) << "approximate(0)";
    answers.push_back({"approximate(0)", r.value, r.edge_flow});
  }
  return answers;
}

/// Largest capacity of the instance; scales both the agreement and the
/// verification tolerance so the checks are meaningful at any magnitude.
double max_capacity(const graph::Digraph& g) {
  double m = 0.0;
  for (const auto& e : g.edges()) m = std::max(m, e.capacity);
  return m;
}

/// The differential assertion: every implementation agrees on the value
/// and every flow assignment verifies as feasible and maximum.
void expect_all_agree(const graph::Digraph& g, graph::VertexId source,
                      graph::VertexId sink, const std::string& label) {
  const graph::FlowProblem problem{&g, source, sink};
  const std::vector<SolverAnswer> answers = all_answers(problem);
  const double scale = std::max(1.0, max_capacity(g));
  const double value_tol = 1e-9 * scale;
  const double verify_tol = 1e-9 * scale;

  const double reference = answers.front().value;
  for (const SolverAnswer& a : answers) {
    EXPECT_NEAR(a.value, reference, value_tol)
        << label << ": " << a.name << " disagrees with "
        << answers.front().name;
    const VerifyResult v =
        verify_flow(g, source, sink, a.edge_flow, verify_tol);
    EXPECT_TRUE(v.optimal)
        << label << ": " << a.name << " flow rejected: " << v.reason;
    EXPECT_NEAR(v.value, a.value, value_tol) << label << ": " << a.name;
  }
}

/// Random digraph: every ordered pair gets an edge with probability
/// `edge_prob`; capacities drawn by `cap` (zero-capacity edges included on
/// purpose — they must be handled, not special-cased away).
template <typename CapFn>
graph::Digraph random_graph(std::size_t n, double edge_prob, util::Rng& rng,
                            CapFn&& cap) {
  graph::Digraph g(n);
  for (graph::VertexId i = 0; i < n; ++i) {
    for (graph::VertexId j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.uniform() < edge_prob) g.add_edge(i, j, cap(rng));
    }
  }
  g.finalize();
  return g;
}

TEST(SolverDifferential, SparseGraphsUniformCapacities) {
  for (const std::size_t n : {4u, 8u, 16u}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      util::Rng rng(seed * 1000 + n);
      const graph::Digraph g = random_graph(
          n, 0.35, rng, [](util::Rng& r) { return r.uniform(0.0, 1.0); });
      expect_all_agree(g, 0, static_cast<graph::VertexId>(n - 1),
                       "sparse n=" + std::to_string(n) + " seed=" +
                           std::to_string(seed));
    }
  }
}

TEST(SolverDifferential, ZeroCapacityEdgesPresent) {
  // ~30% of edges carry capacity exactly 0: present in the graph, useless
  // for flow.  Solvers must neither push along them nor crash on them.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const graph::Digraph g =
        random_graph(10, 0.5, rng, [](util::Rng& r) {
          return r.uniform() < 0.3 ? 0.0 : r.uniform(0.0, 2.0);
        });
    expect_all_agree(g, 0, 9, "zero-cap seed=" + std::to_string(seed));
  }
}

TEST(SolverDifferential, IntegerCapacitiesWithTies) {
  // Small integer capacities create many saturated edges and tied
  // augmenting choices — the regime where implementations most plausibly
  // diverge in assignment while the value must stay identical.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(100 + seed);
    const graph::Digraph g =
        random_graph(8, 0.6, rng, [](util::Rng& r) {
          return static_cast<double>(r.uniform_int(0, 3));
        });
    expect_all_agree(g, 0, 7, "integer seed=" + std::to_string(seed));
  }
}

TEST(SolverDifferential, WideDynamicRangeCapacities) {
  // Capacities spanning twelve decades (nano-ampere physics next to unit
  // scale) probe the relative-epsilon handling of every solver.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(200 + seed);
    const graph::Digraph g =
        random_graph(8, 0.5, rng, [](util::Rng& r) {
          return std::pow(10.0, r.uniform(-9.0, 3.0));
        });
    expect_all_agree(g, 0, 7, "wide-range seed=" + std::to_string(seed));
  }
}

TEST(SolverDifferential, CompleteGraphsAsInPpufInstances) {
  // The PPUF instantiates complete graphs; run the full roster on the
  // exact shape the production path solves.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(300 + seed);
    const graph::Digraph g = random_graph(
        8, 1.0, rng, [](util::Rng& r) { return r.uniform(1e-9, 40e-9); });
    expect_all_agree(g, 1, 6, "complete seed=" + std::to_string(seed));
  }
}

TEST(SolverDifferential, DisconnectedSourceSinkPair) {
  // Two cliques with no edges between them: max flow is exactly zero and
  // every solver must say so.
  graph::Digraph g(8);
  for (graph::VertexId i = 0; i < 4; ++i)
    for (graph::VertexId j = 0; j < 4; ++j)
      if (i != j) g.add_edge(i, j, 1.0);
  for (graph::VertexId i = 4; i < 8; ++i)
    for (graph::VertexId j = 4; j < 8; ++j)
      if (i != j) g.add_edge(i, j, 1.0);
  g.finalize();
  const graph::FlowProblem problem{&g, 0, 7};
  for (const SolverAnswer& a : all_answers(problem))
    EXPECT_EQ(a.value, 0.0) << a.name;
}

TEST(SolverDifferential, InstrumentationCountsEverySolverOnce) {
  // Running the full roster with the registry enabled must populate each
  // solver's solves/work counters — an instrumentation point silently
  // dropped from one solver is itself a differential bug.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  reg.reset();

  util::Rng rng(424);
  const graph::Digraph g = random_graph(
      10, 0.6, rng, [](util::Rng& r) { return r.uniform(0.1, 2.0); });
  const graph::FlowProblem problem{&g, 0, 9};
  (void)all_answers(problem);

  for (const char* name :
       {"maxflow.edmonds_karp", "maxflow.dinic", "maxflow.push_relabel",
        "maxflow.parallel_push_relabel", "maxflow.approximate"}) {
    const std::string base(name);
    EXPECT_GE(reg.counter_value(base + ".solves"), 1u) << name;
    EXPECT_GT(reg.counter_value(base + ".work"), 0u) << name;
    EXPECT_GE(reg.histogram_snapshot(base + ".solve_time_us").count, 1u)
        << name;
  }
  reg.set_enabled(false);
  reg.reset();
}

TEST(SolverDifferential, SaturatedBottleneckChain) {
  // A chain with one narrow edge: the value is the bottleneck capacity and
  // the bottleneck edge must be saturated in every assignment.
  graph::Digraph g(5);
  g.add_edge(0, 1, 10.0);
  const graph::EdgeId bottleneck = g.add_edge(1, 2, 0.125);
  g.add_edge(2, 3, 10.0);
  g.add_edge(3, 4, 10.0);
  g.add_edge(0, 2, 0.0);  // zero-capacity shortcut, unusable
  g.finalize();
  const graph::FlowProblem problem{&g, 0, 4};
  for (const SolverAnswer& a : all_answers(problem)) {
    EXPECT_NEAR(a.value, 0.125, 1e-12) << a.name;
    ASSERT_EQ(a.edge_flow.size(), g.edge_count()) << a.name;
    EXPECT_NEAR(a.edge_flow[bottleneck], 0.125, 1e-12) << a.name;
  }
  expect_all_agree(g, 0, 4, "bottleneck-chain");
}

}  // namespace
}  // namespace ppuf::maxflow
