// Tests for multi-source / multi-sink max-flow (the paper's S/T-set
// formulation via supernode reduction).
#include <gtest/gtest.h>

#include "graph/complete.hpp"
#include "maxflow/multi_terminal.hpp"
#include "maxflow/verify.hpp"
#include "util/rng.hpp"

namespace ppuf::maxflow {
namespace {

using graph::Digraph;
using graph::VertexId;

TEST(MultiTerminal, ReducesToSingleTerminalCase) {
  Digraph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 3.0);
  g.finalize();
  const FlowResult r = solve_multi_terminal({&g, {0}, {2}});
  EXPECT_NEAR(r.value, 3.0, 1e-12);
  EXPECT_EQ(r.edge_flow.size(), 2u);
}

TEST(MultiTerminal, TwoSourcesAddCapacity) {
  // Two sources feeding one sink through separate pipes.
  Digraph g(3);
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 2, 3.5);
  g.finalize();
  const FlowResult r = solve_multi_terminal({&g, {0, 1}, {2}});
  EXPECT_NEAR(r.value, 5.5, 1e-12);
}

TEST(MultiTerminal, TwoSinksDrainIndependently) {
  Digraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 2, 4.0);
  g.finalize();
  const FlowResult r = solve_multi_terminal({&g, {0}, {1, 2}});
  EXPECT_NEAR(r.value, 6.0, 1e-12);
}

TEST(MultiTerminal, SharedBottleneckIsNotDoubleCounted) {
  // Both sources must squeeze through the same middle edge.
  Digraph g(4);
  g.add_edge(0, 2, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(2, 3, 4.0);
  g.finalize();
  const FlowResult r = solve_multi_terminal({&g, {0, 1}, {3}});
  EXPECT_NEAR(r.value, 4.0, 1e-12);
}

TEST(MultiTerminal, EdgeFlowsIndexOriginalGraph) {
  Digraph g(4);
  const auto e0 = g.add_edge(0, 2, 1.0);
  const auto e1 = g.add_edge(1, 2, 1.0);
  const auto e2 = g.add_edge(2, 3, 5.0);
  g.finalize();
  const FlowResult r = solve_multi_terminal({&g, {0, 1}, {3}});
  ASSERT_EQ(r.edge_flow.size(), 3u);
  EXPECT_NEAR(r.edge_flow[e0], 1.0, 1e-12);
  EXPECT_NEAR(r.edge_flow[e1], 1.0, 1e-12);
  EXPECT_NEAR(r.edge_flow[e2], 2.0, 1e-12);
}

TEST(MultiTerminal, Validation) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  EXPECT_THROW(solve_multi_terminal({&g, {}, {1}}), std::invalid_argument);
  EXPECT_THROW(solve_multi_terminal({&g, {0}, {}}), std::invalid_argument);
  EXPECT_THROW(solve_multi_terminal({&g, {0}, {0}}), std::invalid_argument);
  EXPECT_THROW(solve_multi_terminal({&g, {9}, {1}}), std::invalid_argument);
  EXPECT_THROW(solve_multi_terminal({nullptr, {0}, {1}}),
               std::invalid_argument);
}

TEST(MultiTerminal, ExpansionPreservesEdgeIdsAndAddsTerminals) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  VertexId s = 0, t = 0;
  const Digraph ex = expand_with_supernodes({&g, {0}, {2}}, &s, &t);
  EXPECT_EQ(ex.vertex_count(), 5u);
  EXPECT_EQ(s, 3u);
  EXPECT_EQ(t, 4u);
  EXPECT_DOUBLE_EQ(ex.edge(0).capacity, 1.0);
  EXPECT_DOUBLE_EQ(ex.edge(1).capacity, 2.0);
  EXPECT_EQ(ex.edge_count(), 4u);
}

/// Property: multi-terminal value equals the max-flow of the manually
/// expanded graph, for every algorithm, on random graphs.
class MultiTerminalProperty : public ::testing::TestWithParam<int> {};

TEST_P(MultiTerminalProperty, AgreesWithManualExpansionAndIsVerified) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  const std::size_t n = 14;
  const graph::Digraph g = graph::make_complete_uniform(n, rng);
  const MultiTerminalProblem p{&g, {0, 1}, {n - 2, n - 1}};

  const FlowResult mt = solve_multi_terminal(p, Algorithm::kDinic);
  VertexId s = 0, t = 0;
  const Digraph ex = expand_with_supernodes(p, &s, &t);
  const FlowResult direct =
      make_solver(Algorithm::kPushRelabel)->solve({&ex, s, t});
  EXPECT_NEAR(mt.value, direct.value, 1e-9 * std::max(1.0, mt.value));

  // The restricted flows satisfy capacity everywhere and conservation at
  // every non-terminal vertex of the original graph.
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_GE(mt.edge_flow[e], -1e-9);
    EXPECT_LE(mt.edge_flow[e], g.edge(e).capacity + 1e-9);
  }
  std::vector<double> net(n, 0.0);
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    net[g.edge(e).from] -= mt.edge_flow[e];
    net[g.edge(e).to] += mt.edge_flow[e];
  }
  for (VertexId v = 2; v < n - 2; ++v) EXPECT_NEAR(net[v], 0.0, 1e-9);
  // Net outflow of the source set equals the flow value.
  EXPECT_NEAR(-(net[0] + net[1]), mt.value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, MultiTerminalProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace ppuf::maxflow
