// DeviceRegistry + HydrationCache tests: durability, crash recovery,
// compaction, and multi-tenant hydration.
//
// The recovery tests are the contract that matters for a persistent
// store: a process killed mid-append loses at most the record being
// written (torn tail -> truncated, committed devices intact), while a
// complete-but-wrong record (bit rot, tampering) is a typed error, never
// a silently vanished device.  The kill is injected deterministically via
// util::FaultHooks, so every torn-write length is reproducible.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "registry/device_registry.hpp"
#include "registry/hydration_cache.hpp"
#include "registry/record.hpp"
#include "testing/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ppuf {
namespace {

namespace fs = std::filesystem;
using registry::DeviceRegistry;
using registry::EnrollRequest;
using registry::HydrationCache;
using util::Status;
using util::StatusCode;

/// Fresh directory under the test temp root, unique per test.
std::string fresh_dir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("ppuf_registry_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// Small, fast geometry for enrollment-heavy tests.
EnrollRequest small_request(std::uint64_t seed,
                            const std::string& label = "") {
  EnrollRequest req;
  req.node_count = 6;
  req.grid_size = 3;
  req.seed = seed;
  req.label = label;
  return req;
}

TEST(DeviceRegistry, EnrollAssignsSequentialIdsAndPersists) {
  const std::string dir = fresh_dir("enroll_persist");
  std::uint64_t id_a = 0, id_b = 0;
  {
    DeviceRegistry reg;
    ASSERT_TRUE(reg.open(dir).is_ok());
    ASSERT_TRUE(reg.enroll(small_request(101, "card-A"), &id_a).is_ok());
    ASSERT_TRUE(reg.enroll(small_request(102, "card-B"), &id_b).is_ok());
    EXPECT_EQ(id_a, 1u);
    EXPECT_EQ(id_b, 2u);
  }
  // Reopen from disk: both devices, same ids, same metadata.
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  EXPECT_EQ(reg.device_count(), 2u);
  const auto devices = reg.list();
  ASSERT_EQ(devices.size(), 2u);
  EXPECT_EQ(devices[0].id, id_a);
  EXPECT_EQ(devices[0].nodes, 6u);
  EXPECT_EQ(devices[0].grid, 3u);
  EXPECT_EQ(devices[0].label, "card-A");
  EXPECT_FALSE(devices[0].revoked);
  EXPECT_EQ(devices[1].label, "card-B");
  EXPECT_EQ(reg.recovery_stats().wal_records, 2u);
}

TEST(DeviceRegistry, StoredModelMatchesFabricatedSilicon) {
  // The enrolled model must be byte-faithful: predictions from the
  // registry's copy equal predictions from a model derived directly from
  // the same fabrication seed.
  const std::string dir = fresh_dir("model_fidelity");
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  std::uint64_t id = 0;
  ASSERT_TRUE(reg.enroll(small_request(777), &id).is_ok());

  SimulationModel stored;
  ASSERT_TRUE(reg.load_model(id, &stored).is_ok());

  PpufParams params;
  params.node_count = 6;
  params.grid_size = 3;
  MaxFlowPpuf fabricated(params, 777);
  const SimulationModel direct(fabricated);
  ASSERT_EQ(stored.layout().node_count(), direct.layout().node_count());
  EXPECT_EQ(stored.comparator_offset(), direct.comparator_offset());

  util::Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    const Challenge c = random_challenge(direct.layout(), rng);
    const auto p_stored = stored.predict(c);
    const auto p_direct = direct.predict(c);
    ASSERT_TRUE(p_stored.ok());
    EXPECT_EQ(p_stored.bit, p_direct.bit);
    EXPECT_EQ(p_stored.flow_a, p_direct.flow_a);
    EXPECT_EQ(p_stored.flow_b, p_direct.flow_b);
  }
}

TEST(DeviceRegistry, RevokeIsTypedIdempotentAndPersistent) {
  const std::string dir = fresh_dir("revoke");
  std::uint64_t id = 0;
  {
    DeviceRegistry reg;
    ASSERT_TRUE(reg.open(dir).is_ok());
    ASSERT_TRUE(reg.enroll(small_request(1), &id).is_ok());
    EXPECT_EQ(reg.revoke(99).code(), StatusCode::kNotFound);
    ASSERT_TRUE(reg.revoke(id).is_ok());
    ASSERT_TRUE(reg.revoke(id).is_ok());  // idempotent
    EXPECT_TRUE(reg.contains(id));
    EXPECT_FALSE(reg.active(id));
  }
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  EXPECT_FALSE(reg.active(id));
  // Revocation is a serving policy: the published model still loads.
  SimulationModel model;
  EXPECT_TRUE(reg.load_model(id, &model).is_ok());
  // Ids are never reused, even after revocation.
  std::uint64_t next = 0;
  ASSERT_TRUE(reg.enroll(small_request(2), &next).is_ok());
  EXPECT_EQ(next, id + 1);
}

TEST(DeviceRegistry, TornTailWriteIsTruncatedAndCommittedStateSurvives) {
  // Kill the process (simulated) at several points inside the appended
  // record: every prefix length must recover to "device 1 intact, the
  // torn enrollment gone", and re-enrollment must reuse nothing.
  for (const int torn_bytes : {0, 1, 7, 12, 40, 200}) {
    const std::string dir =
        fresh_dir("torn_" + std::to_string(torn_bytes));
    std::uint64_t id1 = 0;
    {
      DeviceRegistry reg;
      ASSERT_TRUE(reg.open(dir).is_ok());
      ASSERT_TRUE(reg.enroll(small_request(11), &id1).is_ok());
      testing::FaultSpec spec;
      spec.registry_torn_write_bytes = torn_bytes;
      const testing::ScopedFaultInjection fault(spec);
      std::uint64_t id2 = 0;
      const Status s = reg.enroll(small_request(12), &id2);
      ASSERT_FALSE(s.is_ok()) << "torn write must surface as an error";
    }
    DeviceRegistry reg;
    ASSERT_TRUE(reg.open(dir).is_ok()) << "torn_bytes=" << torn_bytes;
    const auto rs = reg.recovery_stats();
    EXPECT_EQ(rs.truncated_tail_bytes, static_cast<std::size_t>(torn_bytes))
        << "torn_bytes=" << torn_bytes;
    EXPECT_EQ(reg.device_count(), 1u);
    EXPECT_TRUE(reg.active(id1));
    SimulationModel model;
    EXPECT_TRUE(reg.load_model(id1, &model).is_ok());
    // The torn enrollment never committed, so its id is free to assign.
    std::uint64_t id2 = 0;
    ASSERT_TRUE(reg.enroll(small_request(12), &id2).is_ok());
    EXPECT_EQ(id2, id1 + 1);
  }
}

TEST(DeviceRegistry, CorruptWalRecordIsTypedErrorNotSilentLoss) {
  const std::string dir = fresh_dir("corrupt_wal");
  {
    DeviceRegistry reg;
    ASSERT_TRUE(reg.open(dir).is_ok());
    std::uint64_t id = 0;
    ASSERT_TRUE(reg.enroll(small_request(21), &id).is_ok());
    ASSERT_TRUE(reg.enroll(small_request(22), &id).is_ok());
  }
  // Flip one byte in the middle of the FIRST record: a complete record
  // that fails its CRC is corruption, not a torn tail.
  const std::string wal = dir + "/wal.log";
  std::fstream f(wal, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(40);
  char byte = 0;
  f.seekg(40);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x20);
  f.seekp(40);
  f.write(&byte, 1);
  f.close();

  DeviceRegistry reg;
  const Status s = reg.open(dir);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(reg.is_open());
}

TEST(DeviceRegistry, CorruptSnapshotIsTypedError) {
  const std::string dir = fresh_dir("corrupt_snapshot");
  {
    DeviceRegistry reg;
    ASSERT_TRUE(reg.open(dir).is_ok());
    std::uint64_t id = 0;
    ASSERT_TRUE(reg.enroll(small_request(31), &id).is_ok());
    ASSERT_TRUE(reg.compact().is_ok());
  }
  const std::string snap = dir + "/snapshot.bin";
  ASSERT_TRUE(fs::exists(snap));
  std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  char byte = 0;
  f.seekg(30);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(30);
  f.write(&byte, 1);
  f.close();

  DeviceRegistry reg;
  EXPECT_EQ(reg.open(dir).code(), StatusCode::kInvalidArgument);
}

TEST(DeviceRegistry, CompactionFoldsWalAndPreservesState) {
  const std::string dir = fresh_dir("compact");
  std::uint64_t id1 = 0, id2 = 0, id3 = 0;
  {
    DeviceRegistry reg;
    ASSERT_TRUE(reg.open(dir).is_ok());
    ASSERT_TRUE(reg.enroll(small_request(41, "a"), &id1).is_ok());
    ASSERT_TRUE(reg.enroll(small_request(42, "b"), &id2).is_ok());
    ASSERT_TRUE(reg.enroll(small_request(43, "c"), &id3).is_ok());
    ASSERT_TRUE(reg.revoke(id2).is_ok());
    ASSERT_TRUE(reg.compact().is_ok());
  }
  EXPECT_EQ(fs::file_size(dir + "/wal.log"), 0u);
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  const auto rs = reg.recovery_stats();
  EXPECT_EQ(rs.snapshot_entries, 3u);
  EXPECT_EQ(rs.wal_records, 0u);
  EXPECT_EQ(reg.device_count(), 3u);
  EXPECT_TRUE(reg.active(id1));
  EXPECT_FALSE(reg.active(id2));
  EXPECT_TRUE(reg.active(id3));
  // next_id survives the fold: no id reuse after compaction.
  std::uint64_t id4 = 0;
  ASSERT_TRUE(reg.enroll(small_request(44), &id4).is_ok());
  EXPECT_EQ(id4, id3 + 1);
}

TEST(DeviceRegistry, AutoCompactionBoundsTheWal) {
  const std::string dir = fresh_dir("auto_compact");
  DeviceRegistry::Options options;
  options.auto_compact_records = 2;
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir, options).is_ok());
  std::uint64_t id = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    ASSERT_TRUE(reg.enroll(small_request(seed), &id).is_ok());
  // Five appends with a two-record bound: the WAL can hold at most one
  // yet-unfolded record, the rest live in the snapshot.
  ASSERT_TRUE(fs::exists(dir + "/snapshot.bin"));
  const auto model_size = fs::file_size(dir + "/snapshot.bin");
  EXPECT_LT(fs::file_size(dir + "/wal.log"), model_size);

  DeviceRegistry reopened;
  ASSERT_TRUE(reopened.open(dir).is_ok());
  EXPECT_EQ(reopened.device_count(), 5u);
}

TEST(DeviceRegistry, WalAppendDiskFullIsTypedAndLeavesStateUnchanged) {
  const std::string dir = fresh_dir("disk_full");
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  std::uint64_t id1 = 0;
  ASSERT_TRUE(reg.enroll(small_request(71), &id1).is_ok());
  const auto wal_size = fs::file_size(dir + "/wal.log");
  {
    testing::FaultSpec spec;
    spec.registry_append_failures = 2;
    const testing::ScopedFaultInjection fault(spec);
    std::uint64_t id = 0;
    Status s = reg.enroll(small_request(72), &id);
    EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.to_string();
    s = reg.revoke(id1);
    EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.to_string();
    // Nothing moved: no device appeared, none was revoked, not a byte
    // reached the WAL.
    EXPECT_EQ(reg.device_count(), 1u);
    EXPECT_TRUE(reg.active(id1));
    EXPECT_EQ(fs::file_size(dir + "/wal.log"), wal_size);
  }
  // Fault cleared: the enrollment succeeds and the failed attempt did
  // not burn an id.
  std::uint64_t id2 = 0;
  ASSERT_TRUE(reg.enroll(small_request(72), &id2).is_ok());
  EXPECT_EQ(id2, id1 + 1);
  EXPECT_TRUE(reg.active(id2));
}

TEST(DeviceRegistry, AppendAfterTornWriteRollsBackPartialBytes) {
  // Regression: a torn append used to leave its partial bytes in the
  // WAL; the next successful append then wrote a complete record AFTER
  // the garbage, turning recovery's benign torn-tail case into hard
  // mid-file corruption — reopen refused and every committed device was
  // unreachable.
  const std::string dir = fresh_dir("torn_then_continue");
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  std::uint64_t id1 = 0;
  ASSERT_TRUE(reg.enroll(small_request(61), &id1).is_ok());
  {
    testing::FaultSpec spec;
    spec.registry_torn_write_bytes = 25;
    const testing::ScopedFaultInjection fault(spec);
    std::uint64_t torn_id = 0;
    ASSERT_FALSE(reg.enroll(small_request(62), &torn_id).is_ok());
  }
  std::uint64_t id2 = 0;
  ASSERT_TRUE(reg.enroll(small_request(63), &id2).is_ok());
  EXPECT_EQ(id2, id1 + 1);
  DeviceRegistry reopened;
  ASSERT_TRUE(reopened.open(dir).is_ok());
  EXPECT_EQ(reopened.device_count(), 2u);
  EXPECT_TRUE(reopened.active(id1));
  EXPECT_TRUE(reopened.active(id2));
  EXPECT_EQ(reopened.recovery_stats().truncated_tail_bytes, 0u);
}

TEST(DeviceRegistry, SnapshotFsyncFailureKeepsOldStateAndCleansTmp) {
  const std::string dir = fresh_dir("snapshot_fsync");
  std::uint64_t id1 = 0, id2 = 0;
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  ASSERT_TRUE(reg.enroll(small_request(81, "a"), &id1).is_ok());
  ASSERT_TRUE(reg.enroll(small_request(82, "b"), &id2).is_ok());
  {
    testing::FaultSpec spec;
    spec.registry_fsync_failures = 1;  // hits the snapshot .tmp fsync
    const testing::ScopedFaultInjection fault(spec);
    EXPECT_FALSE(reg.compact().is_ok());
  }
  // The failed compaction left the stale .tmp behind and the WAL
  // untouched; serving state is unaffected.
  EXPECT_TRUE(fs::exists(dir + "/snapshot.bin.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/snapshot.bin"));
  EXPECT_GT(fs::file_size(dir + "/wal.log"), 0u);
  EXPECT_EQ(reg.device_count(), 2u);

  // Recovery removes the stale .tmp and loses nothing.
  DeviceRegistry reopened;
  ASSERT_TRUE(reopened.open(dir).is_ok());
  EXPECT_FALSE(fs::exists(dir + "/snapshot.bin.tmp"));
  EXPECT_EQ(reopened.device_count(), 2u);
  EXPECT_TRUE(reopened.active(id1));
  EXPECT_TRUE(reopened.active(id2));
  // And with the fault gone, compaction completes.
  ASSERT_TRUE(reopened.compact().is_ok());
  EXPECT_EQ(fs::file_size(dir + "/wal.log"), 0u);
  EXPECT_TRUE(fs::exists(dir + "/snapshot.bin"));
}

TEST(DeviceRegistry, SnapshotRenameFailureKeepsOldStateServing) {
  const std::string dir = fresh_dir("snapshot_rename");
  std::uint64_t id1 = 0;
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  ASSERT_TRUE(reg.enroll(small_request(91), &id1).is_ok());
  ASSERT_TRUE(reg.compact().is_ok());  // baseline snapshot
  std::uint64_t id2 = 0;
  ASSERT_TRUE(reg.enroll(small_request(92), &id2).is_ok());
  const auto old_snapshot_size = fs::file_size(dir + "/snapshot.bin");
  {
    testing::FaultSpec spec;
    spec.registry_rename_failures = 1;
    const testing::ScopedFaultInjection fault(spec);
    EXPECT_FALSE(reg.compact().is_ok());
  }
  // Old snapshot still in place, WAL still holds the second enrollment.
  EXPECT_EQ(fs::file_size(dir + "/snapshot.bin"), old_snapshot_size);
  EXPECT_GT(fs::file_size(dir + "/wal.log"), 0u);
  DeviceRegistry reopened;
  ASSERT_TRUE(reopened.open(dir).is_ok());
  EXPECT_EQ(reopened.device_count(), 2u);
  EXPECT_TRUE(reopened.active(id1));
  EXPECT_TRUE(reopened.active(id2));
}

// ---------------------------------------------------------- hydration cache

TEST(HydrationCache, HitMissEvictionAndUnknown) {
  const std::string dir = fresh_dir("hydration_lru");
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  std::uint64_t ids[3] = {};
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(reg.enroll(small_request(60 + i), &ids[i]).is_ok());

  HydrationCache::Options options;
  options.max_entries = 2;
  HydrationCache cache(reg, options);

  std::shared_ptr<const registry::HydratedDevice> dev;
  EXPECT_EQ(cache.get(999, &dev).code(), StatusCode::kNotFound);

  ASSERT_TRUE(cache.get(ids[0], &dev).is_ok());  // cold load
  EXPECT_EQ(dev->id, ids[0]);
  ASSERT_NE(dev->device->sim_model(), nullptr);
  EXPECT_EQ(dev->device->sim_model()->layout().node_count(), 6u);
  ASSERT_TRUE(cache.get(ids[0], &dev).is_ok());  // hit
  ASSERT_TRUE(cache.get(ids[1], &dev).is_ok());  // cold load
  ASSERT_TRUE(cache.get(ids[2], &dev).is_ok());  // cold load -> evicts [0]
  const HydrationCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);

  // The evicted device hydrates again on demand.
  ASSERT_TRUE(cache.get(ids[0], &dev).is_ok());
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(HydrationCache, RevocationEvictsCachedDevice) {
  const std::string dir = fresh_dir("hydration_revoke");
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  std::uint64_t id = 0;
  ASSERT_TRUE(reg.enroll(small_request(70), &id).is_ok());

  HydrationCache cache(reg, {});
  std::shared_ptr<const registry::HydratedDevice> dev;
  ASSERT_TRUE(cache.get(id, &dev).is_ok());
  // A holder keeps its materialised instance alive across revocation...
  ASSERT_TRUE(reg.revoke(id).is_ok());
  EXPECT_EQ(dev->id, id);
  // ...but no new request may resolve the device.
  std::shared_ptr<const registry::HydratedDevice> dev2;
  EXPECT_EQ(cache.get(id, &dev2).code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.stats().entries, 0u);  // evicted on the refused get
}

TEST(HydrationCache, SingleFlightLoadsOnceUnderConcurrency) {
  const std::string dir = fresh_dir("hydration_single_flight");
  DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir).is_ok());
  std::uint64_t id = 0;
  ASSERT_TRUE(reg.enroll(small_request(80), &id).is_ok());

  HydrationCache cache(reg, {});
  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::shared_ptr<const registry::HydratedDevice> dev;
      if (cache.get(id, &dev).is_ok() && dev->id == id)
        ok.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads);
  const HydrationCache::Stats s = cache.stats();
  // Single-flight: exactly one cold load ever happens; every other
  // request either joined that load or hit the cache afterwards.
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits + s.single_flight_waits,
            static_cast<std::uint64_t>(kThreads) - 1);
  EXPECT_EQ(s.entries, 1u);
}

}  // namespace
}  // namespace ppuf
