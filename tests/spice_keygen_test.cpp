// Tests for the SPICE exporter and key derivation.
#include <gtest/gtest.h>

#include <sstream>

#include "circuit/spice_export.hpp"
#include "ppuf/block.hpp"
#include "ppuf/keygen.hpp"

namespace ppuf {
namespace {

// -------------------------------------------------------------- spice export

TEST(SpiceExport, EmitsAllElementTypes) {
  circuit::Netlist nl;
  const auto a = nl.add_node();
  const auto b = nl.add_node();
  nl.add_voltage_source(a, circuit::kGround, 2.0);
  nl.add_resistor(a, b, 1000.0);
  nl.add_capacitor(b, circuit::kGround, 1e-12);
  nl.add_diode(a, b, circuit::DiodeParams{});
  nl.add_mosfet(a, b, circuit::kGround, circuit::MosfetParams{});
  nl.add_current_source(circuit::kGround, b, 1e-6);

  std::ostringstream os;
  circuit::export_spice(nl, os);
  const std::string deck = os.str();
  EXPECT_NE(deck.find("R0 1 2"), std::string::npos);
  EXPECT_NE(deck.find("C0 2 0"), std::string::npos);
  EXPECT_NE(deck.find("D0 1 2 DM0"), std::string::npos);
  EXPECT_NE(deck.find("M0 1 2 0 0 NM0"), std::string::npos);
  EXPECT_NE(deck.find("V0 1 0 DC"), std::string::npos);
  EXPECT_NE(deck.find("I0 0 2 DC"), std::string::npos);
  EXPECT_NE(deck.find(".model DM0 D (IS="), std::string::npos);
  EXPECT_NE(deck.find(".model NM0 NMOS (LEVEL=1 VTO="), std::string::npos);
  EXPECT_NE(deck.find(".op"), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

TEST(SpiceExport, DeduplicatesModelCards) {
  circuit::Netlist nl;
  const auto a = nl.add_node();
  const auto b = nl.add_node();
  nl.add_mosfet(a, b, circuit::kGround, circuit::MosfetParams{});
  nl.add_mosfet(b, a, circuit::kGround, circuit::MosfetParams{});
  circuit::MosfetParams other;
  other.vth = 0.55;
  nl.add_mosfet(a, b, circuit::kGround, other);
  std::ostringstream os;
  circuit::export_spice(nl, os);
  const std::string deck = os.str();
  std::size_t cards = 0;
  for (std::size_t pos = 0;
       (pos = deck.find(".model NM", pos)) != std::string::npos; ++pos)
    ++cards;
  EXPECT_EQ(cards, 2u);  // two distinct parameter sets
}

TEST(SpiceExport, FullBlockDeckIsWellFormed) {
  PpufParams params;
  SweepCircuit sc = build_block(params, circuit::BlockVariation{}, 1,
                                circuit::Environment::nominal());
  std::ostringstream os;
  circuit::SpiceExportOptions opts;
  opts.title = "ppuf building block, input 1";
  circuit::export_spice(sc.netlist, os, opts);
  const std::string deck = os.str();
  EXPECT_NE(deck.find("* ppuf building block"), std::string::npos);
  // Two diodes, four transistors, two resistors, five sources.
  EXPECT_NE(deck.find("D1 "), std::string::npos);
  EXPECT_NE(deck.find("M3 "), std::string::npos);
  EXPECT_NE(deck.find("R1 "), std::string::npos);
  EXPECT_NE(deck.find("V4 "), std::string::npos);
  EXPECT_EQ(deck.find("behavioural element"), std::string::npos);
}

TEST(SpiceExport, BehaviouralElementsAreFlagged) {
  circuit::Netlist nl;
  const auto a = nl.add_node();
  circuit::NonlinearLaw law;
  law.law = [](double v, double* g) {
    *g = 1e-6;
    return 1e-6 * v;
  };
  nl.add_nonlinear(a, circuit::kGround, std::move(law));
  std::ostringstream os;
  circuit::export_spice(nl, os);
  EXPECT_NE(os.str().find("behavioural element"), std::string::npos);
}

// ------------------------------------------------------------------- keygen

PpufParams small_params() {
  PpufParams p;
  p.node_count = 8;
  p.grid_size = 4;
  return p;
}

TEST(KeyGen, ChallengesArePublicAndDeterministic) {
  const CrossbarLayout layout(8, 4);
  KeyDerivationOptions opts;
  opts.bits = 16;
  const auto a = key_challenges(layout, opts);
  const auto b = key_challenges(layout, opts);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  KeyDerivationOptions other = opts;
  other.seed = 2;
  EXPECT_FALSE(key_challenges(layout, other)[0] == a[0]);
}

TEST(KeyGen, KeyIsDeviceUnique) {
  KeyDerivationOptions opts;
  opts.bits = 24;
  opts.votes = 1;
  MaxFlowPpuf dev1(small_params(), 111);
  MaxFlowPpuf dev2(small_params(), 222);
  util::Rng noise(1);
  const auto k1 = derive_key(dev1, opts, noise);
  const auto k2 = derive_key(dev2, opts, noise);
  const double mismatch = key_mismatch_rate(k1, k2);
  EXPECT_GT(mismatch, 0.15);  // different devices -> very different keys
  EXPECT_LT(mismatch, 0.85);
}

TEST(KeyGen, KeyIsStableAcrossDerivations) {
  KeyDerivationOptions opts;
  opts.bits = 24;
  opts.votes = 5;
  MaxFlowPpuf dev(small_params(), 333);
  util::Rng noise(2);
  const auto k1 = derive_key(dev, opts, noise);
  const auto k2 = derive_key(dev, opts, noise);
  EXPECT_LT(key_mismatch_rate(k1, k2), 0.1);
}

TEST(KeyGen, Validation) {
  const CrossbarLayout layout(8, 4);
  KeyDerivationOptions opts;
  opts.bits = 0;
  EXPECT_THROW(key_challenges(layout, opts), std::invalid_argument);
  MaxFlowPpuf dev(small_params(), 444);
  util::Rng noise(3);
  KeyDerivationOptions even;
  even.bits = 4;
  even.votes = 2;
  EXPECT_THROW(derive_key(dev, even, noise), std::invalid_argument);
  EXPECT_THROW(key_mismatch_rate({1}, {1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace ppuf
