// Edge-case suites: adversarial graph shapes for the max-flow solvers,
// numeric-format boundaries, and attacker-component corner behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "attack/knn.hpp"
#include "maxflow/approximate.hpp"
#include "maxflow/parallel_push_relabel.hpp"
#include "maxflow/solver.hpp"
#include "maxflow/verify.hpp"
#include "util/bigint.hpp"
#include "util/fit.hpp"

namespace ppuf {
namespace {

using graph::Digraph;
using graph::VertexId;

// ------------------------------------------------- adversarial graph shapes

/// Long path: stresses augmenting-path length and relabel chains.
Digraph long_path(std::size_t n, double cap) {
  Digraph g(n);
  for (VertexId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, cap);
  g.finalize();
  return g;
}

/// Star through a middle hub: max-flow = min(spokes) * hub leaves.
Digraph star(std::size_t leaves) {
  Digraph g(2 + leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    const auto mid = static_cast<VertexId>(2 + i);
    g.add_edge(0, mid, 1.0);
    g.add_edge(mid, 1, 1.0);
  }
  g.finalize();
  return g;
}

/// Unit-capacity bipartite "matching" graph with a known maximum.
Digraph bipartite(std::size_t k) {
  // s=0, left = 1..k, right = k+1..2k, t = 2k+1; left i -> right i and
  // right (i+1) mod k: perfect matching exists, value k.
  Digraph g(2 * k + 2);
  const auto t = static_cast<VertexId>(2 * k + 1);
  for (std::size_t i = 0; i < k; ++i) {
    const auto l = static_cast<VertexId>(1 + i);
    const auto r1 = static_cast<VertexId>(k + 1 + i);
    const auto r2 = static_cast<VertexId>(k + 1 + (i + 1) % k);
    g.add_edge(0, l, 1.0);
    g.add_edge(l, r1, 1.0);
    g.add_edge(l, r2, 1.0);
    g.add_edge(r1, t, 1.0);
  }
  g.finalize();
  return g;
}

class AdversarialShapes
    : public ::testing::TestWithParam<maxflow::Algorithm> {};

TEST_P(AdversarialShapes, LongPath) {
  const Digraph g = long_path(64, 2.5);
  const auto r = maxflow::make_solver(GetParam())->solve({&g, 0, 63});
  EXPECT_NEAR(r.value, 2.5, 1e-12);
}

TEST_P(AdversarialShapes, Star) {
  const Digraph g = star(20);
  const auto r = maxflow::make_solver(GetParam())->solve({&g, 0, 1});
  EXPECT_NEAR(r.value, 20.0, 1e-12);
}

TEST_P(AdversarialShapes, UnitCapacityBipartite) {
  const Digraph g = bipartite(12);
  const auto r = maxflow::make_solver(GetParam())
                     ->solve({&g, 0, static_cast<VertexId>(25)});
  EXPECT_NEAR(r.value, 12.0, 1e-12);
  const auto v = maxflow::verify_flow(g, 0, 25, r.edge_flow, 1e-9);
  EXPECT_TRUE(v.optimal) << v.reason;
}

TEST_P(AdversarialShapes, NanCapacityRejectedUpFront) {
  // NaN poisons every residual comparison (all false), which can loop a
  // solver forever; the residual network must reject it before any work.
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, std::numeric_limits<double>::quiet_NaN());
  g.finalize();
  EXPECT_THROW(maxflow::make_solver(GetParam())->solve({&g, 0, 2}),
               std::invalid_argument);
}

TEST_P(AdversarialShapes, InfiniteCapacityRejectedUpFront) {
  Digraph g(3);
  g.add_edge(0, 1, std::numeric_limits<double>::infinity());
  g.add_edge(1, 2, 1.0);
  g.finalize();
  EXPECT_THROW(maxflow::make_solver(GetParam())->solve({&g, 0, 2}),
               std::invalid_argument);
}

TEST_P(AdversarialShapes, WidelySpreadCapacities) {
  // Capacities across 9 decades: exercises the scale-relative epsilon.
  Digraph g(4);
  g.add_edge(0, 1, 1e-9);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1e-9);
  g.finalize();
  const auto r = maxflow::make_solver(GetParam())->solve({&g, 0, 3});
  EXPECT_NEAR(r.value, 2e-9, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AdversarialShapes,
    ::testing::ValuesIn(maxflow::all_algorithms()),
    [](const ::testing::TestParamInfo<maxflow::Algorithm>& info) {
      std::string n = maxflow::algorithm_name(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(AdversarialShapesParallel, AllShapesWithFourThreads) {
  const maxflow::ParallelPushRelabel solver(4);
  const Digraph p = long_path(64, 2.5);
  EXPECT_NEAR(solver.solve({&p, 0, 63}).value, 2.5, 1e-12);
  const Digraph s = star(20);
  EXPECT_NEAR(solver.solve({&s, 0, 1}).value, 20.0, 1e-12);
  const Digraph b = bipartite(12);
  EXPECT_NEAR(solver.solve({&b, 0, 25}).value, 12.0, 1e-12);
}

TEST(AdversarialShapesParallel, NanCapacityRejectedUpFront) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, std::numeric_limits<double>::quiet_NaN());
  g.finalize();
  EXPECT_THROW(maxflow::ParallelPushRelabel(2).solve({&g, 0, 2}),
               std::invalid_argument);
  EXPECT_THROW(maxflow::solve_approximate({&g, 0, 2}, 0.0),
               std::invalid_argument);
}

// --------------------------------------------------------- numeric corners

TEST(FitFormatting, PolynomialToStringMentionsAllTerms) {
  const util::Polynomial p{{1.0, -2.0, 3.0}};
  const std::string s = p.to_string();
  EXPECT_NE(s.find("*x"), std::string::npos);
  EXPECT_NE(s.find("*x^2"), std::string::npos);
  EXPECT_NE(s.find(" - "), std::string::npos);  // sign of -2 x
}

TEST(FitFormatting, PowerLawToString) {
  const util::PowerLaw pl{2.5e-7, 2.0};
  const std::string s = pl.to_string();
  EXPECT_NE(s.find("n^2"), std::string::npos);
}

TEST(BigUintCorners, LimbBoundaryPowers) {
  EXPECT_EQ(util::BigUint::pow2(31).to_decimal(), "2147483648");
  EXPECT_EQ(util::BigUint::pow2(32).to_decimal(), "4294967296");
  EXPECT_EQ(util::BigUint::pow2(33).to_decimal(), "8589934592");
}

TEST(BigUintCorners, DivisionOfEqualsAndSelfSubtraction) {
  const util::BigUint a = util::BigUint::from_decimal("987654321987654321");
  EXPECT_EQ((a / a).to_decimal(), "1");
  util::BigUint b = a;
  b -= a;
  EXPECT_TRUE(b.is_zero());
  EXPECT_EQ(b.to_decimal(), "0");
}

TEST(BigUintCorners, MultiplyByZeroNormalises) {
  util::BigUint a(12345);
  a *= util::BigUint(0);
  EXPECT_TRUE(a.is_zero());
  EXPECT_EQ(a.bit_length(), 0u);
}

// ----------------------------------------------------------- attack corners

TEST(KnnCorners, SingleTrainingPointAlwaysWins) {
  attack::Dataset train;
  train.features = {{0.0, 0.0}};
  train.labels = {-1};
  const attack::Knn knn(train, 1);
  EXPECT_EQ(knn.predict(std::vector<double>{100.0, 100.0}), -1);
}

TEST(KnnCorners, TieVoteResolvesToPositive) {
  // k = 2 with one vote each: the implementation's >= 0 rule picks +1;
  // pinned so a refactor that silently changes tie-breaking is caught.
  attack::Dataset train;
  train.features = {{-1.0}, {1.0}};
  train.labels = {-1, 1};
  const attack::Knn knn(train, 2);
  EXPECT_EQ(knn.predict(std::vector<double>{0.0}), 1);
}

}  // namespace
}  // namespace ppuf
