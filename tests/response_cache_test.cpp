// ResponseCache unit tests, with the environment-keying property front and
// centre: a response cached under one (temperature, Vdd) point must NEVER
// answer a query at another — the same challenge can flip its bit across
// environments, and that flip probability is precisely what the Fig. 9
// reliability bench measures.  A cache that ignored the environment would
// silently flatten every such metric.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ppuf/ppuf.hpp"
#include "ppuf/response_cache.hpp"
#include "ppuf/sim_model.hpp"
#include "util/rng.hpp"

namespace ppuf {
namespace {

Challenge make_challenge(graph::VertexId source, graph::VertexId sink,
                         std::size_t bit_count, std::uint64_t pattern) {
  Challenge c;
  c.source = source;
  c.sink = sink;
  c.bits.resize(bit_count);
  for (std::size_t i = 0; i < bit_count; ++i)
    c.bits[i] = static_cast<std::uint8_t>((pattern >> (i % 64)) & 1);
  return c;
}

TEST(ResponseCache, RoundTripAndCounters) {
  ResponseCache cache(1024 * 1024);
  const Challenge c = make_challenge(0, 5, 16, 0b1011);
  const circuit::Environment env = circuit::Environment::nominal();

  EXPECT_FALSE(cache.lookup(kSingleDeviceId, c, env).has_value());
  cache.insert(kSingleDeviceId, c, env, {1, 3.5e-7, 3.1e-7});
  const auto hit = cache.lookup(kSingleDeviceId, c, env);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->bit, 1);
  EXPECT_EQ(hit->flow_a, 3.5e-7);
  EXPECT_EQ(hit->flow_b, 3.1e-7);

  const ResponseCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(ResponseCache, DistinctChallengesAreDistinctKeys) {
  ResponseCache cache(1024 * 1024);
  const circuit::Environment env = circuit::Environment::nominal();
  const Challenge a = make_challenge(0, 5, 16, 0b1011);
  Challenge b = a;
  b.bits[7] ^= 1;          // one type-B bit apart
  Challenge ends = a;
  ends.sink = 6;           // same bits, different type-A part

  cache.insert(kSingleDeviceId, a, env, {0, 1.0, 2.0});
  EXPECT_FALSE(cache.lookup(kSingleDeviceId, b, env).has_value());
  EXPECT_FALSE(cache.lookup(kSingleDeviceId, ends, env).has_value());
  ASSERT_TRUE(cache.lookup(kSingleDeviceId, a, env).has_value());
}

TEST(ResponseCache, EnvironmentChangesAreNeverServedStaleEntries) {
  ResponseCache cache(1024 * 1024);
  const Challenge c = make_challenge(1, 4, 16, 0xf0f0);
  const circuit::Environment nominal = circuit::Environment::nominal();
  circuit::Environment hot;
  hot.temperature_c = 80.0;
  circuit::Environment sagged;
  sagged.vdd_scale = 0.9;

  cache.insert(kSingleDeviceId, c, nominal, {1, 5.0e-7, 4.0e-7});
  // Temperature or supply moved: the nominal entry must not answer.
  EXPECT_FALSE(cache.lookup(kSingleDeviceId, c, hot).has_value());
  EXPECT_FALSE(cache.lookup(kSingleDeviceId, c, sagged).has_value());

  // Each environment holds its own (possibly flipped) response.
  cache.insert(kSingleDeviceId, c, hot, {0, 4.2e-7, 4.4e-7});
  cache.insert(kSingleDeviceId, c, sagged, {1, 4.6e-7, 3.9e-7});
  EXPECT_EQ(cache.lookup(kSingleDeviceId, c, nominal)->bit, 1);
  EXPECT_EQ(cache.lookup(kSingleDeviceId, c, hot)->bit, 0);
  EXPECT_EQ(cache.lookup(kSingleDeviceId, c, sagged)->bit, 1);
  EXPECT_EQ(cache.stats().entries, 3u);
}

// Regression for the multi-tenant server: two enrolled devices can receive
// the same challenge in the same environment, and their responses differ —
// the key must carry the device identity or one device's cached bit
// answers for the other.
TEST(ResponseCache, DistinctDevicesNeverShareEntries) {
  ResponseCache cache(1024 * 1024);
  const circuit::Environment env = circuit::Environment::nominal();
  const Challenge c = make_challenge(0, 5, 16, 0b1011);
  constexpr std::uint64_t kDeviceA = 1, kDeviceB = 2;

  cache.insert(kDeviceA, c, env, {1, 5.0e-7, 4.0e-7});
  // Device B asking the same challenge must MISS, not read A's bit.
  EXPECT_FALSE(cache.lookup(kDeviceB, c, env).has_value());
  EXPECT_FALSE(cache.lookup(kSingleDeviceId, c, env).has_value());

  cache.insert(kDeviceB, c, env, {0, 4.0e-7, 5.0e-7});
  ASSERT_TRUE(cache.lookup(kDeviceA, c, env).has_value());
  ASSERT_TRUE(cache.lookup(kDeviceB, c, env).has_value());
  EXPECT_EQ(cache.lookup(kDeviceA, c, env)->bit, 1);
  EXPECT_EQ(cache.lookup(kDeviceB, c, env)->bit, 0);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResponseCache, PredictBatchPartitionsByDeviceId) {
  // The batch path stamps PredictBatchOptions::cache_device_id into every
  // key: two models sharing one cache under different ids never cross.
  PpufParams params;
  params.node_count = 6;
  params.grid_size = 3;
  MaxFlowPpuf puf_a(params, 77);
  MaxFlowPpuf puf_b(params, 78);
  SimulationModel model_a(puf_a);
  SimulationModel model_b(puf_b);

  util::Rng rng(3);
  std::vector<Challenge> batch;
  for (int i = 0; i < 8; ++i)
    batch.push_back(random_challenge(model_a.layout(), rng));

  ResponseCache cache(4 * 1024 * 1024);
  SimulationModel::PredictBatchOptions opts_a;
  opts_a.cache = &cache;
  opts_a.cache_device_id = 1;
  SimulationModel::PredictBatchOptions opts_b = opts_a;
  opts_b.cache_device_id = 2;

  (void)model_a.predict_batch(batch, opts_a);
  EXPECT_EQ(cache.stats().hits, 0u);
  // Same challenges under device B's id: all misses, fresh entries.
  (void)model_b.predict_batch(batch, opts_b);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 2 * batch.size());
  // Each device now hits only its own partition.
  (void)model_a.predict_batch(batch, opts_a);
  (void)model_b.predict_batch(batch, opts_b);
  EXPECT_EQ(cache.stats().hits, 2 * batch.size());
  EXPECT_EQ(cache.stats().misses, 2 * batch.size());
}

TEST(ResponseCache, PredictBatchDoesNotReuseAcrossEnvironments) {
  // End-to-end version of the property above, through the real batch
  // path: one cache, two environment keys, zero cross-talk.
  PpufParams params;
  params.node_count = 6;
  params.grid_size = 3;
  MaxFlowPpuf puf(params, 77);
  SimulationModel model(puf);

  util::Rng rng(3);
  std::vector<Challenge> batch;
  for (int i = 0; i < 8; ++i)
    batch.push_back(random_challenge(model.layout(), rng));

  ResponseCache cache(4 * 1024 * 1024);
  SimulationModel::PredictBatchOptions nominal_opts;
  nominal_opts.cache = &cache;
  nominal_opts.cache_env = circuit::Environment::nominal();
  (void)model.predict_batch(batch, nominal_opts);
  const ResponseCacheStats after_nominal = cache.stats();
  EXPECT_EQ(after_nominal.misses, batch.size());
  EXPECT_EQ(after_nominal.hits, 0u);

  // Same challenges, hot environment: every item must MISS (no reuse of
  // the nominal entries), filling a second, independent set of entries.
  SimulationModel::PredictBatchOptions hot_opts = nominal_opts;
  hot_opts.cache_env.temperature_c = 80.0;
  (void)model.predict_batch(batch, hot_opts);
  const ResponseCacheStats after_hot = cache.stats();
  EXPECT_EQ(after_hot.misses, 2 * batch.size());
  EXPECT_EQ(after_hot.hits, 0u);
  EXPECT_EQ(after_hot.entries, 2 * batch.size());

  // Re-running each environment now hits only its own entries.
  (void)model.predict_batch(batch, nominal_opts);
  (void)model.predict_batch(batch, hot_opts);
  const ResponseCacheStats final_stats = cache.stats();
  EXPECT_EQ(final_stats.hits, 2 * batch.size());
  EXPECT_EQ(final_stats.misses, 2 * batch.size());
}

TEST(ResponseCache, LruEvictionRespectsByteBudgetAndRecency) {
  // One shard, tiny budget, 16-bit challenges: entry cost is
  // 2 * 16 + 128 = 160 bytes, so a 1024-byte budget holds 6 entries.
  ResponseCache cache(1024, /*shard_count=*/1);
  const circuit::Environment env = circuit::Environment::nominal();
  auto nth = [&](std::uint64_t n) {
    return make_challenge(0, 1, 16, 0x8000 + n);
  };

  for (std::uint64_t n = 0; n < 6; ++n)
    cache.insert(kSingleDeviceId, nth(n), env, {0, static_cast<double>(n), 0.0});
  EXPECT_EQ(cache.stats().entries, 6u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch entry 0 so entry 1 is now least recently used, then overflow.
  ASSERT_TRUE(cache.lookup(kSingleDeviceId, nth(0), env).has_value());
  cache.insert(kSingleDeviceId, nth(6), env, {0, 6.0, 0.0});
  EXPECT_EQ(cache.stats().entries, 6u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(kSingleDeviceId, nth(0), env).has_value());   // refreshed: kept
  EXPECT_FALSE(cache.lookup(kSingleDeviceId, nth(1), env).has_value());  // LRU: evicted
  EXPECT_TRUE(cache.lookup(kSingleDeviceId, nth(6), env).has_value());   // newest: kept
}

// Regression: clear() used to drop the entries but keep hits / misses /
// evictions, so the first hit_rate() measured after a clear blended two
// unrelated populations.  A cleared cache must report like a fresh one.
TEST(ResponseCache, ClearResetsCountersAlongWithEntries) {
  ResponseCache cache(1024, /*shard_count=*/1);
  const circuit::Environment env = circuit::Environment::nominal();
  auto nth = [&](std::uint64_t n) {
    return make_challenge(0, 1, 16, 0x4000 + n);
  };

  // Generate traffic in every counter: misses, hits and (by overflowing
  // the 6-entry budget) evictions.
  for (std::uint64_t n = 0; n < 8; ++n) {
    (void)cache.lookup(kSingleDeviceId, nth(n), env);  // miss
    cache.insert(kSingleDeviceId, nth(n), env, {0, static_cast<double>(n), 0.0});
  }
  (void)cache.lookup(kSingleDeviceId, nth(7), env);  // hit
  const ResponseCacheStats before = cache.stats();
  ASSERT_GT(before.hits, 0u);
  ASSERT_GT(before.misses, 0u);
  ASSERT_GT(before.evictions, 0u);

  cache.clear();
  const ResponseCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.charged_bytes, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.hit_rate(), 0.0);

  // Post-clear traffic counts from zero.
  (void)cache.lookup(kSingleDeviceId, nth(0), env);
  cache.insert(kSingleDeviceId, nth(0), env, {1, 0.5, 0.25});
  (void)cache.lookup(kSingleDeviceId, nth(0), env);
  const ResponseCacheStats fresh = cache.stats();
  EXPECT_EQ(fresh.hits, 1u);
  EXPECT_EQ(fresh.misses, 1u);
  EXPECT_EQ(fresh.entries, 1u);
}

TEST(ResponseCache, PublishMetricsMirrorsStatsAndShardOccupancy) {
  ResponseCache cache(1024 * 1024, /*shard_count=*/4);
  const circuit::Environment env = circuit::Environment::nominal();
  for (std::uint64_t n = 0; n < 32; ++n) {
    const Challenge c = make_challenge(0, 3, 16, n);
    (void)cache.lookup(kSingleDeviceId, c, env);
    cache.insert(kSingleDeviceId, c, env, {0, static_cast<double>(n), 0.0});
    (void)cache.lookup(kSingleDeviceId, c, env);
  }

  obs::MetricsRegistry reg(/*enabled=*/true);
  cache.publish_metrics(reg, "test.cache");
  const ResponseCacheStats s = cache.stats();
  EXPECT_EQ(reg.gauge_value("test.cache.hits"),
            static_cast<std::int64_t>(s.hits));
  EXPECT_EQ(reg.gauge_value("test.cache.misses"),
            static_cast<std::int64_t>(s.misses));
  EXPECT_EQ(reg.gauge_value("test.cache.entries"),
            static_cast<std::int64_t>(s.entries));
  EXPECT_EQ(reg.gauge_value("test.cache.shard_count"), 4);
  std::int64_t shard_total = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string name =
        "test.cache.shard." + std::to_string(i) + ".entries";
    EXPECT_TRUE(reg.has_metric(name));
    shard_total += reg.gauge_value(name);
  }
  EXPECT_EQ(shard_total, static_cast<std::int64_t>(s.entries));

  // A disabled registry must stay untouched.
  obs::MetricsRegistry off(/*enabled=*/false);
  cache.publish_metrics(off, "test.cache");
  EXPECT_EQ(off.metric_count(), 0u);
}

TEST(ResponseCache, ConcurrentMixedWorkloadStaysConsistent) {
  // Hammer one cache from several threads with overlapping key sets; the
  // assertions are modest (no lost updates on distinct keys, counters add
  // up) — the real payoff is running data-race-free under TSan/ASan.
  ResponseCache cache(1024 * 1024, /*shard_count=*/8);
  const circuit::Environment env = circuit::Environment::nominal();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 64;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &env, t] {
      for (std::uint64_t n = 0; n < kKeys; ++n) {
        const Challenge c = make_challenge(0, 2, 24, n);
        cache.insert(kSingleDeviceId, c, env, {static_cast<int>(n & 1),
                              static_cast<double>(n), static_cast<double>(t)});
        const auto hit = cache.lookup(kSingleDeviceId, c, env);
        ASSERT_TRUE(hit.has_value());
        // flow_a identifies the key; every writer agrees on it.
        ASSERT_EQ(hit->flow_a, static_cast<double>(n));
      }
    });
  }
  for (auto& th : threads) th.join();

  const ResponseCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, kKeys);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads) * kKeys);
  EXPECT_EQ(s.misses, 0u);
}

}  // namespace
}  // namespace ppuf
