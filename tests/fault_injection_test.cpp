// Deterministic fault-injection suite: forces the failures the robustness
// machinery exists for — Newton stalls, poisoned capacities, exhausted
// deadlines, malicious prover reports — and checks every layer degrades
// into a typed, inspectable outcome instead of a hang, crash, or silent
// wrong answer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "circuit/dc.hpp"
#include "graph/complete.hpp"
#include "maxflow/approximate.hpp"
#include "maxflow/batch.hpp"
#include "maxflow/parallel_push_relabel.hpp"
#include "maxflow/solver.hpp"
#include "ppuf/network_solver.hpp"
#include "protocol/authentication.hpp"
#include "testing/fault_injection.hpp"

namespace ppuf {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ------------------------------------------------ convergence-recovery ladder

/// Diode from a 1 V source: the exponential needs a handful of Newton
/// iterations, so a starved direct rung genuinely stalls.
circuit::Netlist diode_netlist() {
  circuit::Netlist net;
  const circuit::NodeId a = net.add_node("a");
  net.add_voltage_source(a, circuit::kGround, 1.0);
  net.add_diode(a, circuit::kGround, circuit::DiodeParams{});
  return net;
}

TEST(RecoveryLadder, StalledDirectNewtonFailsWithoutRecovery) {
  const circuit::Netlist net = diode_netlist();
  testing::FaultSpec spec;
  spec.newton_direct_iteration_cap = 1;
  const testing::ScopedFaultInjection fault(spec);

  circuit::DcOptions options;
  options.enable_recovery = false;  // the pre-ladder solver's behaviour
  const circuit::OperatingPoint op = circuit::DcSolver(net, options).solve();
  EXPECT_FALSE(op.converged);
  ASSERT_EQ(op.diagnostics.stages.size(), 1u);
  EXPECT_EQ(op.diagnostics.strategy, circuit::RecoveryStage::kDirect);
}

TEST(RecoveryLadder, StalledDirectNewtonRecoversAndNamesTheStage) {
  const circuit::Netlist net = diode_netlist();
  testing::FaultSpec spec;
  spec.newton_direct_iteration_cap = 1;
  const testing::ScopedFaultInjection fault(spec);

  const circuit::OperatingPoint op = circuit::DcSolver(net).solve();
  ASSERT_TRUE(op.converged) << op.diagnostics.summary();
  EXPECT_TRUE(op.diagnostics.recovered());
  EXPECT_EQ(op.diagnostics.strategy, circuit::RecoveryStage::kGminStepping);
  EXPECT_GE(op.diagnostics.stages.size(), 2u);
  EXPECT_FALSE(op.diagnostics.stages.front().converged);
  EXPECT_NE(op.diagnostics.summary().find("gmin-stepping"),
            std::string::npos);
  EXPECT_NEAR(op.voltage(1), 1.0, 1e-9);
}

TEST(RecoveryLadder, SkippingGminPinsRecoveryToSourceStepping) {
  const circuit::Netlist net = diode_netlist();
  testing::FaultSpec spec;
  spec.newton_direct_iteration_cap = 1;
  spec.newton_skip_gmin_stage = true;
  const testing::ScopedFaultInjection fault(spec);

  const circuit::OperatingPoint op = circuit::DcSolver(net).solve();
  ASSERT_TRUE(op.converged) << op.diagnostics.summary();
  EXPECT_EQ(op.diagnostics.strategy,
            circuit::RecoveryStage::kSourceStepping);
}

TEST(RecoveryLadder, HooksRestoredOnScopeExit) {
  {
    testing::FaultSpec spec;
    spec.newton_direct_iteration_cap = 1;
    const testing::ScopedFaultInjection fault(spec);
  }
  // Outside the scope the same netlist converges directly again.
  const circuit::OperatingPoint op =
      circuit::DcSolver(diode_netlist()).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.diagnostics.strategy, circuit::RecoveryStage::kDirect);
}

/// Linear two-point curve through the origin with slope g.
MonotoneCurve linear_curve(double g) {
  return MonotoneCurve(std::vector<double>{-1.0, 1.0},
                       std::vector<double>{-g, g});
}

TEST(RecoveryLadder, NetworkSolverLadderRecoversToo) {
  const MonotoneCurve c = linear_curve(1e-6);
  const std::vector<const MonotoneCurve*> curves(3 * 2, &c);
  testing::FaultSpec spec;
  spec.newton_direct_iteration_cap = 1;
  const testing::ScopedFaultInjection fault(spec);

  NetworkSolver::Options bare;
  bare.enable_recovery = false;
  const auto failed =
      NetworkSolver(3, curves, bare).solve_dc(0, 2, 2.0);
  EXPECT_FALSE(failed.converged);

  const auto recovered = NetworkSolver(3, curves).solve_dc(0, 2, 2.0);
  ASSERT_TRUE(recovered.converged) << recovered.diagnostics.summary();
  EXPECT_TRUE(recovered.diagnostics.recovered());
  EXPECT_NEAR(recovered.node_voltage[1], 1.0, 2e-6);
}

// --------------------------------------------------------- batch degradation

TEST(BatchFaults, PoisonedItemsFailAloneOthersComplete) {
  // 16 instances, 2 with NaN-poisoned capacities: the poisoned items come
  // back kInvalidArgument, the other 14 solve normally.
  util::Rng rng(7);
  testing::FaultInjector injector(21);
  std::vector<graph::Digraph> graphs;
  graphs.reserve(16);
  for (int i = 0; i < 16; ++i)
    graphs.push_back(graph::make_complete_uniform(8, rng));
  for (const std::size_t bad : {std::size_t{3}, std::size_t{11}}) {
    graphs[bad] = injector.corrupt_capacities(
        graphs[bad], {graph::EdgeId{0}, graph::EdgeId{5}}, kNan);
  }
  std::vector<graph::FlowProblem> problems;
  for (const auto& g : graphs) problems.push_back({&g, 0, 7});

  maxflow::BatchOptions options;
  options.thread_count = 4;
  const auto results =
      maxflow::solve_batch(problems, maxflow::Algorithm::kDinic, options);
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 3 || i == 11) {
      EXPECT_EQ(results[i].status.code(),
                util::StatusCode::kInvalidArgument)
          << "item " << i;
      EXPECT_NE(results[i].status.message().find("capacity"),
                std::string::npos);
    } else {
      EXPECT_TRUE(results[i].ok()) << "item " << i << ": "
                                   << results[i].status.to_string();
      EXPECT_GT(results[i].value, 0.0);
    }
  }
}

TEST(BatchFaults, TransientFailuresAreRetried) {
  util::Rng rng(9);
  const graph::Digraph g = graph::make_complete_uniform(6, rng);
  std::vector<graph::FlowProblem> problems(4, {&g, 0, 5});

  testing::FaultSpec spec;
  spec.maxflow_transient_failures = 2;
  const testing::ScopedFaultInjection fault(spec);

  maxflow::BatchOptions options;
  options.max_attempts = 3;
  const auto results = maxflow::solve_batch(
      problems, maxflow::Algorithm::kEdmondsKarp, options);
  for (const auto& r : results)
    EXPECT_TRUE(r.ok()) << r.status.to_string();
}

TEST(BatchFaults, TransientFailureWithoutRetryBudgetIsInternal) {
  util::Rng rng(9);
  const graph::Digraph g = graph::make_complete_uniform(6, rng);
  std::vector<graph::FlowProblem> problems(3, {&g, 0, 5});

  testing::FaultSpec spec;
  spec.maxflow_transient_failures = 1;
  const testing::ScopedFaultInjection fault(spec);

  const auto results = maxflow::solve_batch(
      problems, maxflow::Algorithm::kEdmondsKarp, maxflow::BatchOptions{});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status.code(), util::StatusCode::kInternal);
  EXPECT_TRUE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

// ------------------------------------------------- deadlines and cancellation

class DeadlineAllAlgorithms
    : public ::testing::TestWithParam<maxflow::Algorithm> {};

TEST_P(DeadlineAllAlgorithms, ZeroDeadlineReturnsTypedStatus) {
  util::Rng rng(13);
  const graph::Digraph g = graph::make_complete_uniform(32, rng);
  util::SolveControl control;
  control.deadline = util::Deadline::after_seconds(0.0);
  const auto r =
      maxflow::make_solver(GetParam())->solve({&g, 0, 31}, control);
  EXPECT_EQ(r.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.edge_flow.size(), g.edge_count());  // shape stays intact
}

TEST_P(DeadlineAllAlgorithms, PreCancelledTokenReturnsCancelled) {
  util::Rng rng(13);
  const graph::Digraph g = graph::make_complete_uniform(16, rng);
  util::CancelToken token;
  token.request_cancel();
  util::SolveControl control;
  control.cancel = &token;
  const auto r =
      maxflow::make_solver(GetParam())->solve({&g, 0, 15}, control);
  EXPECT_EQ(r.status.code(), util::StatusCode::kCancelled);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, DeadlineAllAlgorithms,
    ::testing::ValuesIn(maxflow::all_algorithms()),
    [](const ::testing::TestParamInfo<maxflow::Algorithm>& info) {
      std::string n = maxflow::algorithm_name(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(DeadlineFaults, ParallelAndApproximateSolversHonourDeadlines) {
  util::Rng rng(17);
  const graph::Digraph g = graph::make_complete_uniform(24, rng);
  util::SolveControl control;
  control.deadline = util::Deadline::after_seconds(0.0);

  const auto pr = maxflow::ParallelPushRelabel(2).solve({&g, 0, 23}, control);
  EXPECT_EQ(pr.status.code(), util::StatusCode::kDeadlineExceeded);

  const auto ar = maxflow::solve_approximate({&g, 0, 23}, 0.0, control);
  EXPECT_EQ(ar.status.code(), util::StatusCode::kDeadlineExceeded);
}

TEST(DeadlineFaults, ExpiredBatchMarksEveryItem) {
  util::Rng rng(19);
  const graph::Digraph g = graph::make_complete_uniform(12, rng);
  std::vector<graph::FlowProblem> problems(8, {&g, 0, 11});
  maxflow::BatchOptions options;
  options.thread_count = 3;
  options.control.deadline = util::Deadline::after_seconds(0.0);
  const auto results = maxflow::solve_batch(
      problems, maxflow::Algorithm::kPushRelabel, options);
  for (const auto& r : results)
    EXPECT_EQ(r.status.code(), util::StatusCode::kDeadlineExceeded);
}

// -------------------------------------------------- protocol-level hardening

struct ProtocolFaults : public ::testing::Test {
  ProtocolFaults() {
    PpufParams p;
    p.node_count = 10;
    p.grid_size = 4;
    puf = std::make_unique<MaxFlowPpuf>(p, 404);
    model = std::make_unique<SimulationModel>(*puf);
  }

  double tolerance() const {
    double mean_cap = 0.0;
    const std::size_t edges = puf->layout().edge_count();
    for (graph::EdgeId e = 0; e < edges; ++e)
      mean_cap += model->capacity(0, e, 0);
    mean_cap /= static_cast<double>(edges);
    return 0.10 * mean_cap;
  }

  std::unique_ptr<MaxFlowPpuf> puf;
  std::unique_ptr<SimulationModel> model;
  util::Rng rng{11};
};

TEST_F(ProtocolFaults, VerifierRejectsMalformedReportsWithoutThrowing) {
  const protocol::Verifier verifier(*model, 1e-3, tolerance());
  const Challenge c = verifier.issue_challenge(rng);
  const protocol::ProverReport good = protocol::prove_with_ppuf(*puf, c, 1e-6);
  ASSERT_TRUE(verifier.verify(c, good).accepted);

  auto expect_rejected = [&](protocol::ProverReport bad,
                             const char* needle) {
    protocol::AuthenticationResult r;
    ASSERT_NO_THROW(r = verifier.verify(c, bad));
    EXPECT_FALSE(r.accepted);
    EXPECT_NE(r.detail.find(needle), std::string::npos) << r.detail;
  };

  protocol::ProverReport truncated = good;
  truncated.edge_flow_a.resize(3);
  expect_rejected(truncated, "entries");

  protocol::ProverReport oversized = good;
  oversized.edge_flow_b.resize(oversized.edge_flow_b.size() + 7, 0.0);
  expect_rejected(oversized, "entries");

  protocol::ProverReport poisoned = good;
  poisoned.edge_flow_b[2] = kNan;
  expect_rejected(poisoned, "non-finite");

  protocol::ProverReport nan_flow = good;
  nan_flow.flow_a = kNan;
  expect_rejected(nan_flow, "flow_a");

  protocol::ProverReport time_traveller = good;
  time_traveller.elapsed_seconds = -1.0;
  expect_rejected(time_traveller, "elapsed_seconds");

  protocol::ProverReport weird_bit = good;
  weird_bit.bit = 7;
  expect_rejected(weird_bit, "bit");
}

TEST_F(ProtocolFaults, DelayedProverReportMissesTheDeadline) {
  const double deadline = 1e-3;
  const protocol::Verifier verifier(*model, deadline, tolerance());
  const Challenge c = verifier.issue_challenge(rng);
  const protocol::ProverReport on_time = protocol::prove_with_ppuf(*puf, c, 1e-6);
  const protocol::ProverReport late =
      testing::FaultInjector::delay_report(on_time, 10.0 * deadline);
  const protocol::AuthenticationResult r = verifier.verify(c, late);
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.in_time);
  EXPECT_NE(r.detail.find("deadline"), std::string::npos);
}

TEST_F(ProtocolFaults, ChainVerifierRejectsMalformedRoundBit) {
  const protocol::Verifier verifier(*model, 1e-3, tolerance());
  const Challenge first = verifier.issue_challenge(rng);
  protocol::ChainedReport report =
      protocol::prove_chain_with_ppuf(*puf, first, 3, 99, 1e-6);
  report.rounds[1].bit = -5;  // feeds the chain derivation if unchecked
  protocol::ChainedVerifyResult r;
  ASSERT_NO_THROW(r = protocol::verify_chain(verifier, *model, first, 3, 99,
                                             report, 0, rng));
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.detail.find("bit"), std::string::npos);
}

TEST_F(ProtocolFaults, SimulatedProverStopsAtDeadlineWithTypedStatus) {
  const Challenge c = random_challenge(puf->layout(), rng);
  util::SolveControl control;
  control.deadline = util::Deadline::after_seconds(0.0);
  const protocol::ProverReport r = protocol::prove_by_simulation(
      *model, c, maxflow::Algorithm::kPushRelabel, control);
  EXPECT_EQ(r.status.code(), util::StatusCode::kDeadlineExceeded);

  const protocol::ChainedReport chain = protocol::prove_chain_by_simulation(
      *model, c, 4, 1, maxflow::Algorithm::kPushRelabel, control);
  EXPECT_EQ(chain.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_LT(chain.rounds.size(), 4u);
}

// ----------------------------------------------------------- determinism

TEST(FaultInjectorDeterminism, SameSeedSameCorruption) {
  circuit::Netlist net;
  const circuit::NodeId a = net.add_node();
  const circuit::NodeId b = net.add_node();
  net.add_mosfet(a, b, circuit::kGround, circuit::MosfetParams{});
  net.add_mosfet(b, a, circuit::kGround, circuit::MosfetParams{});
  net.add_resistor(a, b, 1e4);

  testing::FaultInjector first(1234);
  testing::FaultInjector second(1234);
  testing::FaultInjector other(77);
  const circuit::Netlist n1 = first.perturb_devices(net, 0.05, 0.1);
  const circuit::Netlist n2 = second.perturb_devices(net, 0.05, 0.1);
  const circuit::Netlist n3 = other.perturb_devices(net, 0.05, 0.1);
  for (std::size_t i = 0; i < n1.mosfets().size(); ++i) {
    EXPECT_DOUBLE_EQ(n1.mosfets()[i].params.vth, n2.mosfets()[i].params.vth);
    EXPECT_NE(n1.mosfets()[i].params.vth, net.mosfets()[i].params.vth);
  }
  EXPECT_DOUBLE_EQ(n1.resistors()[0].resistance,
                   n2.resistors()[0].resistance);
  EXPECT_NE(n1.mosfets()[0].params.vth, n3.mosfets()[0].params.vth);

  EXPECT_EQ(testing::FaultInjector(5).pick_indices(100, 10),
            testing::FaultInjector(5).pick_indices(100, 10));
}

}  // namespace
}  // namespace ppuf
