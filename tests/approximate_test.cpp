// Tests for the certified approximate max-flow solver.
#include <gtest/gtest.h>

#include "graph/complete.hpp"
#include "maxflow/approximate.hpp"
#include "maxflow/verify.hpp"
#include "util/rng.hpp"

namespace ppuf::maxflow {
namespace {

using graph::Digraph;

Digraph small_graph() {
  Digraph g(4);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(0, 2, 4.0);
  g.add_edge(2, 3, 4.0);
  g.finalize();
  return g;
}

TEST(Approximate, EpsilonZeroIsExact) {
  const Digraph g = small_graph();
  const ApproximateResult r = solve_approximate({&g, 0, 3}, 0.0);
  EXPECT_NEAR(r.value, 7.0, 1e-9);
  EXPECT_NEAR(r.optimum_upper_bound, 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.certified_ratio(), 1.0);
}

TEST(Approximate, FlowIsAlwaysFeasible) {
  util::Rng rng(2);
  const Digraph g = graph::make_complete_uniform(16, rng);
  for (const double eps : {0.0, 0.1, 0.3, 0.5}) {
    const ApproximateResult r = solve_approximate({&g, 0, 15}, eps);
    const VerifyResult v = verify_flow(g, 0, 15, r.edge_flow, 1e-9);
    EXPECT_TRUE(v.feasible) << "eps=" << eps << ": " << v.reason;
    EXPECT_NEAR(v.value, r.value, 1e-9 * std::max(1.0, r.value));
  }
}

TEST(Approximate, CertificateIsSound) {
  // The certified upper bound must never fall below the true optimum.
  util::Rng rng(3);
  const Digraph g = graph::make_complete_uniform(14, rng);
  const double exact = make_solver(Algorithm::kDinic)
                           ->solve({&g, 0, 13})
                           .value;
  for (const double eps : {0.05, 0.2, 0.5, 0.9}) {
    const ApproximateResult r = solve_approximate({&g, 0, 13}, eps);
    EXPECT_GE(r.optimum_upper_bound, exact - 1e-9);
    EXPECT_GE(r.value, (1.0 - eps) * exact - 1e-9)
        << "guarantee violated at eps=" << eps;
    EXPECT_LE(r.value, exact + 1e-9);
  }
}

TEST(Approximate, LooserEpsilonNeverMoreWork) {
  util::Rng rng(4);
  const Digraph g = graph::make_complete_uniform(24, rng);
  const ApproximateResult tight = solve_approximate({&g, 0, 23}, 0.01);
  const ApproximateResult loose = solve_approximate({&g, 0, 23}, 0.5);
  EXPECT_LE(loose.work, tight.work);
  EXPECT_LE(loose.value, tight.value + 1e-12);
}

TEST(Approximate, ZeroCapacityGraph) {
  Digraph g(2);
  g.add_edge(0, 1, 0.0);
  g.finalize();
  const ApproximateResult r = solve_approximate({&g, 0, 1}, 0.1);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_DOUBLE_EQ(r.certified_ratio(), 1.0);
}

TEST(Approximate, DisconnectedSink) {
  Digraph g(3);
  g.add_edge(0, 1, 2.0);
  g.finalize();
  const ApproximateResult r = solve_approximate({&g, 0, 2}, 0.1);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(Approximate, Validation) {
  const Digraph g = small_graph();
  EXPECT_THROW(solve_approximate({&g, 0, 0}, 0.1), std::invalid_argument);
  EXPECT_THROW(solve_approximate({&g, 0, 3}, -0.1), std::invalid_argument);
  EXPECT_THROW(solve_approximate({&g, 0, 3}, 1.0), std::invalid_argument);
}

/// Property sweep: on random complete graphs the guarantee holds for every
/// epsilon and the certificate ratio is honest.
class ApproxGuarantee
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ApproxGuarantee, HoldsOnRandomCompleteGraphs) {
  const auto [seed, eps] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7 + 1);
  const std::size_t n = 12 + static_cast<std::size_t>(seed) % 8;
  const Digraph g = graph::make_complete_uniform(n, rng);
  const auto t = static_cast<graph::VertexId>(n - 1);
  const double exact =
      make_solver(Algorithm::kPushRelabel)->solve({&g, 0, t}).value;
  const ApproximateResult r = solve_approximate({&g, 0, t}, eps);
  EXPECT_GE(r.value, (1.0 - eps) * exact - 1e-9);
  EXPECT_GE(r.certified_ratio(), 1.0 - eps - 1e-12);
  EXPECT_LE(r.value, exact + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxGuarantee,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(0.05, 0.25, 0.6)));

}  // namespace
}  // namespace ppuf::maxflow
