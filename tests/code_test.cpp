// Tests for the minimum-distance challenge code and the Section 4.2
// CRP-space bounds.
#include <gtest/gtest.h>

#include "ppuf/code.hpp"

namespace ppuf {
namespace {

TEST(Code, GreedyCodeRespectsMinimumDistance) {
  util::Rng rng(1);
  const auto code = build_min_distance_code(16, 4, 40, rng);
  EXPECT_GE(code.size(), 8u);
  EXPECT_TRUE(check_min_distance(code, 4));
  for (const auto& w : code) EXPECT_EQ(w.size(), 16u);
}

TEST(Code, CheckMinDistanceDetectsViolations) {
  std::vector<std::vector<std::uint8_t>> code{{1, 0, 0, 0}, {1, 1, 0, 0}};
  EXPECT_TRUE(check_min_distance(code, 1));
  EXPECT_FALSE(check_min_distance(code, 2));
}

TEST(Code, DistanceOneIsWholeSpace) {
  util::Rng rng(2);
  const auto code = build_min_distance_code(4, 1, 16, rng, 100000);
  EXPECT_EQ(code.size(), 16u);  // every 4-bit word is admissible
}

TEST(Code, RejectsImpossibleDistance) {
  util::Rng rng(3);
  EXPECT_THROW(build_min_distance_code(4, 5, 10, rng),
               std::invalid_argument);
}

class CodeDistanceProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CodeDistanceProperty, GreedyAlwaysValid) {
  const auto [length, d] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(length * 100 + d));
  const auto code = build_min_distance_code(
      static_cast<std::size_t>(length), static_cast<std::size_t>(d), 30, rng);
  EXPECT_TRUE(check_min_distance(code, static_cast<std::size_t>(d)));
  EXPECT_GE(code.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodeDistanceProperty,
    ::testing::Combine(::testing::Values(9, 16, 25, 36, 64),
                       ::testing::Values(2, 4, 8)));

TEST(CrpBound, TypeBBoundMatchesHandComputation) {
  // l = 2, d = 2: 2^4 / (C(4,0)+C(4,1)) = 16/5 = 3 (floor).
  EXPECT_EQ(type_b_space_lower_bound(2, 2).to_decimal(), "3");
  // l = 2, d = 1: the whole space, 16.
  EXPECT_EQ(type_b_space_lower_bound(2, 1).to_decimal(), "16");
}

TEST(CrpBound, GreedyCodeBeatsTheBoundOnSmallCases) {
  // Gilbert-Varshamov guarantees a code at least as large as the bound;
  // greedy construction should reach it for tiny parameters.
  util::Rng rng(4);
  const auto bound = type_b_space_lower_bound(2, 2);  // 3
  const auto code = build_min_distance_code(4, 2, 64, rng, 100000);
  EXPECT_GE(code.size(), static_cast<std::size_t>(bound.to_double()));
}

TEST(CrpBound, PaperValueFor200Nodes) {
  // Section 4.2: n = 200, l = 15, d = 2l = 30 gives N_CRP >= 6.53e35.
  const util::BigUint n_crp = crp_space_lower_bound(200, 15, 30);
  const double v = n_crp.to_double();
  EXPECT_GT(v, 6.0e35);
  EXPECT_LT(v, 7.0e35);
  // Leading digits spelled out, to pin the exact value we reproduce.
  EXPECT_EQ(n_crp.to_decimal().size(), 36u);  // ~6.5e35 has 36 digits
  EXPECT_EQ(n_crp.to_decimal().substr(0, 3), "653");
}

TEST(CrpBound, TotalIsTypeATimesTypeB) {
  const util::BigUint total = crp_space_lower_bound(10, 3, 2);
  const util::BigUint type_b = type_b_space_lower_bound(3, 2);
  EXPECT_EQ(total, util::BigUint(90) * type_b);
}

TEST(CrpBound, Validation) {
  EXPECT_THROW(type_b_space_lower_bound(3, 0), std::invalid_argument);
  EXPECT_THROW(type_b_space_lower_bound(3, 10), std::invalid_argument);
  EXPECT_THROW(crp_space_lower_bound(1, 3, 2), std::invalid_argument);
}

TEST(CrpBound, GrowsWithGridAndShrinksWithDistance) {
  EXPECT_GT(type_b_space_lower_bound(8, 4), type_b_space_lower_bound(6, 4));
  EXPECT_GT(type_b_space_lower_bound(8, 2), type_b_space_lower_bound(8, 8));
}

}  // namespace
}  // namespace ppuf
