// Cross-card regression: the paper's architecture-level claims must hold
// on a second device card, not just the calibrated default — evidence that
// the HSPICE/PTM substitution (DESIGN.md §2) did not bake the conclusions
// into one parameter set.
#include <gtest/gtest.h>

#include <cmath>

#include "ppuf/block.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "util/statistics.hpp"

namespace ppuf {
namespace {

const circuit::Environment kNominal = circuit::Environment::nominal();

TEST(CrossCard, BlockStillSaturatesAndIsMonotone) {
  const PpufParams p = PpufParams::card_45nm();
  const BlockCurve c =
      characterize_block(p, circuit::BlockVariation{}, 1, kNominal);
  EXPECT_GT(c.isat, 1e-9);
  EXPECT_LT(c.isat, 1e-6);
  double prev = c.iv(-0.3);
  for (double v = -0.3; v <= 2.4; v += 0.02) {
    const double i = c.iv(v);
    EXPECT_GE(i, prev - 1e-18);
    prev = i;
  }
  // Requirement 1/SD: plateau still flat to better than 1%/V.
  EXPECT_LT((c.iv(2.0) - c.iv(1.0)) / c.isat, 0.01);
}

TEST(CrossCard, ComplementaryBiasStillBalances) {
  const PpufParams p = PpufParams::card_45nm();
  const BlockCurve c0 =
      characterize_block(p, circuit::BlockVariation{}, 0, kNominal);
  const BlockCurve c1 =
      characterize_block(p, circuit::BlockVariation{}, 1, kNominal);
  EXPECT_NEAR(c0.isat, c1.isat, 0.02 * c1.isat);
}

TEST(CrossCard, Requirement2HoldsOnSecondCard) {
  const PpufParams p = PpufParams::card_45nm();
  util::Rng rng(9);
  util::RunningStats isat, sce;
  for (int i = 0; i < 50; ++i) {
    const auto var = circuit::draw_block_variation(p.variation, rng);
    const BlockCurve c = characterize_block(p, var, 1, kNominal);
    isat.add(c.isat);
    sce.add(std::abs(c.iv(2.0) - c.iv(1.0)));
  }
  EXPECT_GT(isat.stddev(), 30.0 * sce.mean());
}

TEST(CrossCard, ExecutionSimulationEquivalenceHolds) {
  PpufParams p = PpufParams::card_45nm();
  p.node_count = 10;
  p.grid_size = 4;
  MaxFlowPpuf puf(p, 4545);
  SimulationModel model(puf);
  util::Rng rng(2);
  util::RunningStats err;
  for (int i = 0; i < 6; ++i) {
    const Challenge c = random_challenge(puf.layout(), rng);
    const auto exe = puf.evaluate(c);
    ASSERT_TRUE(exe.converged);
    const auto sim = model.predict(c);
    err.add(std::abs(exe.current_a - sim.flow_a) / exe.current_a);
    err.add(std::abs(exe.current_b - sim.flow_b) / exe.current_b);
  }
  EXPECT_LT(err.mean(), 0.01);
}

TEST(CrossCard, InstancesRemainDistinct) {
  PpufParams p = PpufParams::card_45nm();
  p.node_count = 8;
  p.grid_size = 4;
  MaxFlowPpuf a(p, 1);
  MaxFlowPpuf b(p, 2);
  util::Rng rng(3);
  int agree = 0;
  const int total = 20;
  for (int i = 0; i < total; ++i) {
    const Challenge c = random_challenge(a.layout(), rng);
    agree += a.evaluate(c).bit == b.evaluate(c).bit ? 1 : 0;
  }
  EXPECT_GT(agree, 2);
  EXPECT_LT(agree, 18);
}

}  // namespace
}  // namespace ppuf
