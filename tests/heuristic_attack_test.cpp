// Tests for the O(n) structural heuristics (cut bound and two-hop flow)
// used by the gray-box attack analysis.
#include <gtest/gtest.h>

#include "attack/heuristic.hpp"
#include "maxflow/solver.hpp"

namespace ppuf::attack {
namespace {

struct HeuristicFixture : public ::testing::Test {
  HeuristicFixture() {
    PpufParams p;
    p.node_count = 10;
    p.grid_size = 4;
    puf = std::make_unique<MaxFlowPpuf>(p, 515);
    model = std::make_unique<SimulationModel>(*puf);
  }
  std::unique_ptr<MaxFlowPpuf> puf;
  std::unique_ptr<SimulationModel> model;
  util::Rng rng{3};
};

TEST_F(HeuristicFixture, CutBoundIsAnUpperBound) {
  for (int i = 0; i < 10; ++i) {
    const Challenge c = random_challenge(puf->layout(), rng);
    for (int net = 0; net < 2; ++net) {
      const double exact = model->predicted_flow(net, c);
      EXPECT_GE(cut_bound_value(*model, net, c), exact - 1e-12);
    }
  }
}

TEST_F(HeuristicFixture, TwoHopIsALowerBound) {
  for (int i = 0; i < 10; ++i) {
    const Challenge c = random_challenge(puf->layout(), rng);
    for (int net = 0; net < 2; ++net) {
      const double exact = model->predicted_flow(net, c);
      const double two_hop = two_hop_value(*model, net, c);
      EXPECT_LE(two_hop, exact + 1e-12);
      EXPECT_GT(two_hop, 0.0);
    }
  }
}

TEST_F(HeuristicFixture, BoundsBracketTheFlow) {
  const Challenge c = random_challenge(puf->layout(), rng);
  const double exact = model->predicted_flow(0, c);
  EXPECT_LE(two_hop_value(*model, 0, c), exact + 1e-12);
  EXPECT_GE(cut_bound_value(*model, 0, c), exact - 1e-12);
}

TEST_F(HeuristicFixture, PredictionsAreBits) {
  for (int i = 0; i < 6; ++i) {
    const Challenge c = random_challenge(puf->layout(), rng);
    const int a = predict_bit_cut_bound(*model, c);
    const int b = predict_bit_two_hop(*model, c);
    EXPECT_TRUE(a == 0 || a == 1);
    EXPECT_TRUE(b == 0 || b == 1);
  }
}

TEST_F(HeuristicFixture, TwoHopPredictsBetterThanCoinFlip) {
  // On complete graphs the two-hop flow captures most of the max flow, so
  // its bit predictions should beat 50% clearly (the security-relevant
  // measurement lives in bench_approximation_attack).
  int agree = 0;
  const int total = 40;
  for (int i = 0; i < total; ++i) {
    const Challenge c = random_challenge(puf->layout(), rng);
    agree += predict_bit_two_hop(*model, c) == model->predict(c).bit ? 1 : 0;
  }
  EXPECT_GT(agree, total * 6 / 10);
}

}  // namespace
}  // namespace ppuf::attack
