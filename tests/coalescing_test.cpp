// Cross-connection request coalescing + client pipelining, end to end.
//
// PR 8's serving change lets the AuthServer drain pending PREDICT/VERIFY
// frames from *different* connections into per-device batches and scatter
// the replies back, while the AuthClient keeps a bounded window of
// pipelined requests outstanding and matches replies strictly by request
// id.  Everything about that is an invariant-preservation exercise — the
// batched path must be observationally identical to per-frame dispatch —
// so this suite is differential where it can be and adversarial where it
// must be:
//
//   * differential     - the same pipelined, device-interleaved workload
//                        against a coalesce-off and a coalesce-on server
//                        (warm response cache included) is bit-for-bit
//                        identical, and equal to the local model;
//   * deadline mixing  - a tight budget coalesced next to unlimited
//                        batch-mates expires typed DEADLINE_EXCEEDED
//                        without poisoning the rest of the batch;
//   * reordering       - replies legally overtake slower requests on one
//                        connection, and the pipelined client attributes
//                        them correctly by id (never by arrival order);
//   * desync           - a reply id matching no outstanding request drops
//                        the connection with a typed error instead of
//                        being misattributed to the oldest waiter;
//   * late replies     - a timed-out request's answer can never leak into
//                        the next request on that connection (the client
//                        reconnects on every transport failure);
//   * slow peers       - a connection that stops draining its socket is
//                        disconnected at the backlog bound instead of
//                        wedging workers or the event loop.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"
#include "registry/device_registry.hpp"
#include "server/auth_server.hpp"
#include "util/fault_hooks.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ppuf {
namespace {

using net::AuthClient;
using net::Frame;
using net::MessageType;
using net::WireCode;
using server::AuthServer;
using server::AuthServerOptions;
using util::Status;
using util::StatusCode;

constexpr std::uint64_t kSeed = 7;
constexpr double kChipDelay = 1e-6;

PpufParams small_params() {
  PpufParams p;
  p.node_count = 16;
  p.grid_size = 4;
  return p;
}

MaxFlowPpuf& shared_puf() {
  static MaxFlowPpuf puf(small_params(), kSeed);
  return puf;
}

SimulationModel& shared_model() {
  static SimulationModel model(shared_puf());
  return model;
}

/// Coalescing on: small batches, a window comfortably wider than the
/// loopback round trip, and a warm response cache.
AuthServerOptions coalescing_options() {
  AuthServerOptions o;
  o.threads = 2;
  o.chain_length = 3;
  o.spot_checks = 0;
  o.coalesce_max_batch = 4;
  o.coalesce_wait_us = 2000;
  o.response_cache_bytes = 4 * 1024 * 1024;
  return o;
}

AuthServerOptions per_frame_options() {
  AuthServerOptions o;
  o.threads = 2;
  o.chain_length = 3;
  o.spot_checks = 0;
  o.coalesce_max_batch = 1;  // per-frame dispatch: the reference behaviour
  return o;
}

/// Read one whole frame from a raw blocking socket.
Status read_frame(int fd, const util::Deadline& deadline, Frame* out) {
  std::vector<std::uint8_t> buf(net::kHeaderSize);
  if (Status s = net::recv_exact(fd, buf.data(), buf.size(), deadline);
      !s.is_ok())
    return s;
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(buf[28]) |
      static_cast<std::uint32_t>(buf[29]) << 8 |
      static_cast<std::uint32_t>(buf[30]) << 16 |
      static_cast<std::uint32_t>(buf[31]) << 24;
  if (payload_len > net::kMaxPayload)
    return Status::internal("oversized reply payload");
  buf.resize(net::kHeaderSize + payload_len);
  if (payload_len > 0) {
    if (Status s = net::recv_exact(fd, buf.data() + net::kHeaderSize,
                                   payload_len, deadline);
        !s.is_ok())
      return s;
  }
  std::size_t consumed = 0;
  if (net::decode_frame(buf.data(), buf.size(), out, &consumed) !=
      net::DecodeResult::kOk)
    return Status::internal("unparseable reply frame");
  return Status::ok();
}

WireCode error_code_of(const Frame& reply) {
  net::ErrorReply err;
  if (reply.type != MessageType::kErrorReply ||
      !net::decode_error_reply(reply.payload, &err).is_ok())
    return WireCode::kOk;
  return err.code;
}

std::string fresh_registry_dir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::uint64_t enroll_small(registry::DeviceRegistry& reg, std::uint64_t seed,
                           const std::string& label) {
  registry::EnrollRequest req;
  req.node_count = small_params().node_count;
  req.grid_size = small_params().grid_size;
  req.seed = seed;
  req.label = label;
  std::uint64_t id = 0;
  EXPECT_TRUE(reg.enroll(req, &id).is_ok());
  return id;
}

AuthClient pipelined_client(std::uint16_t port, std::uint64_t device_id,
                            int depth) {
  net::ClientOptions o;
  o.device_id = device_id;
  o.pipeline_depth = depth;
  return AuthClient("127.0.0.1", port, o);
}

// ---------------------------------------------------------------------------
// Differential: coalesced serving is observationally identical to
// per-frame serving — mixed devices, pipelined connections, warm cache.

TEST(Coalescing, DifferentialMatchesPerFrameServing) {
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(fresh_registry_dir("coalesce_diff")).is_ok());
  constexpr int kDevices = 3;
  const std::uint64_t seeds[kDevices] = {101, 102, 103};
  std::uint64_t ids[kDevices];
  SimulationModel models[kDevices];
  for (int d = 0; d < kDevices; ++d) {
    ids[d] = enroll_small(reg, seeds[d], "diff");
    ASSERT_TRUE(reg.load_model(ids[d], &models[d]).is_ok());
  }

  // Per-device challenge lists (seeded: both servers see the same work).
  constexpr int kPerDevice = 6;
  std::vector<Challenge> challenges[kDevices];
  for (int d = 0; d < kDevices; ++d) {
    util::Rng rng(900 + d);
    for (int i = 0; i < kPerDevice; ++i)
      challenges[d].push_back(
          random_challenge(models[d].layout(), rng));
  }

  AuthServer per_frame(reg, per_frame_options());
  AuthServer coalesced(reg, coalescing_options());
  ASSERT_TRUE(per_frame.start().is_ok());
  ASSERT_TRUE(coalesced.start().is_ok());

  // One pipelined connection per device, all three running concurrently so
  // frames from different devices interleave inside the server's window.
  auto run_workload = [&](const AuthServer& srv,
                          std::vector<SimulationModel::Prediction>* out) {
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int d = 0; d < kDevices; ++d) {
      workers.emplace_back([&, d] {
        AuthClient client =
            pipelined_client(srv.port(), ids[d], /*depth=*/4);
        const Status s =
            client.predict_pipelined(challenges[d], &out[d]);
        if (!s.is_ok()) failures.fetch_add(1);
      });
    }
    for (std::thread& w : workers) w.join();
    return failures.load();
  };

  std::vector<SimulationModel::Prediction> want[kDevices];
  std::vector<SimulationModel::Prediction> got[kDevices];
  std::vector<SimulationModel::Prediction> warm[kDevices];
  ASSERT_EQ(run_workload(per_frame, want), 0);
  ASSERT_EQ(run_workload(coalesced, got), 0);
  // Second pass against the coalesced server: answered from the response
  // cache, and still required to be identical.
  ASSERT_EQ(run_workload(coalesced, warm), 0);

  for (int d = 0; d < kDevices; ++d) {
    ASSERT_EQ(want[d].size(), challenges[d].size());
    for (int i = 0; i < kPerDevice; ++i) {
      ASSERT_TRUE(want[d][i].ok()) << "device " << d << " item " << i;
      ASSERT_TRUE(got[d][i].ok()) << "device " << d << " item " << i;
      ASSERT_TRUE(warm[d][i].ok()) << "device " << d << " item " << i;
      // Per-frame, coalesced, and cache-hit serving are bit- AND
      // flow-exact with each other and with the local model.
      const SimulationModel::Prediction local =
          models[d].predict(challenges[d][i]);
      EXPECT_EQ(want[d][i].bit, local.bit);
      EXPECT_EQ(want[d][i].flow_a, local.flow_a);
      EXPECT_EQ(want[d][i].flow_b, local.flow_b);
      EXPECT_EQ(got[d][i].bit, want[d][i].bit);
      EXPECT_EQ(got[d][i].flow_a, want[d][i].flow_a);
      EXPECT_EQ(got[d][i].flow_b, want[d][i].flow_b);
      EXPECT_EQ(warm[d][i].bit, want[d][i].bit);
      EXPECT_EQ(warm[d][i].flow_a, want[d][i].flow_a);
      EXPECT_EQ(warm[d][i].flow_b, want[d][i].flow_b);
    }
  }

  // VERIFY coalesces through the same path and must agree verdict-for-
  // verdict with per-frame serving.
  MaxFlowPpuf chip(small_params(), seeds[0]);
  const Challenge vc = challenges[0][0];
  const protocol::ProverReport honest =
      protocol::prove_with_ppuf(chip, vc, kChipDelay);
  protocol::ProverReport tampered = honest;
  tampered.bit ^= 1;
  for (const AuthServer* srv : {&per_frame, &coalesced}) {
    AuthClient client = pipelined_client(srv->port(), ids[0], 1);
    protocol::AuthenticationResult result;
    ASSERT_TRUE(client.verify(vc, honest, &result).is_ok());
    EXPECT_TRUE(result.accepted) << result.detail;
    ASSERT_TRUE(client.verify(vc, tampered, &result).is_ok());
    EXPECT_FALSE(result.accepted);
  }

  // The coalesced server actually batched (pipeline depth 4 inside a 2 ms
  // window guarantees it), and the per-frame server never did.
  const AuthServer::Stats cs = coalesced.stats();
  EXPECT_GT(cs.coalesced_batches, 0u);
  EXPECT_GT(cs.coalesced_items, cs.coalesced_batches);
  EXPECT_EQ(per_frame.stats().coalesced_batches, 0u);

  coalesced.stop();
  per_frame.stop();
}

// ---------------------------------------------------------------------------
// Deadline mixing: one tight budget inside a batch of unlimited mates.

TEST(Coalescing, MidBatchDeadlineExpiryDoesNotPoisonBatchMates) {
  AuthServerOptions o = coalescing_options();
  o.threads = 1;  // a single worker, parked on purpose
  o.coalesce_max_batch = 8;
  o.coalesce_wait_us = 50'000;
  AuthServer srv(shared_model(), o);
  ASSERT_TRUE(srv.start().is_ok());
  const util::Deadline io = util::Deadline::after_seconds(10.0);

  // Park the only worker for 150 ms so the batch window closes (50 ms)
  // long before any predict can run.
  net::Socket parker;
  ASSERT_TRUE(
      net::connect_tcp("127.0.0.1", srv.port(), 2000, &parker).is_ok());
  const std::vector<std::uint8_t> park = net::encode_frame(
      MessageType::kPingRequest, 99, 0, 0, net::encode_ping_request(150));
  ASSERT_TRUE(
      net::send_all(parker.fd(), park.data(), park.size(), io).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Three predicts coalesce into one batch: ids 1 and 3 unlimited, id 2
  // with a 70 ms budget that is alive at admission (so it coalesces: 70 ms
  // remaining >= the 50 ms window) but dead by the time the worker frees
  // up at ~150 ms.
  util::Rng rng(41);
  const Challenge c = random_challenge(shared_model().layout(), rng);
  const std::vector<std::uint8_t> payload = net::encode_predict_request(c);
  net::Socket sock;
  ASSERT_TRUE(
      net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock).is_ok());
  std::vector<std::uint8_t> burst;
  for (const auto& [id, budget_ms] :
       std::vector<std::pair<std::uint64_t, std::uint32_t>>{
           {1, 0}, {2, 70}, {3, 0}}) {
    const std::vector<std::uint8_t> f = net::encode_frame(
        MessageType::kPredictRequest, id, 0, budget_ms, payload);
    burst.insert(burst.end(), f.begin(), f.end());
  }
  ASSERT_TRUE(
      net::send_all(sock.fd(), burst.data(), burst.size(), io).is_ok());

  const SimulationModel::Prediction want = shared_model().predict(c);
  int served = 0, expired = 0;
  for (int i = 0; i < 3; ++i) {
    Frame reply;
    ASSERT_TRUE(read_frame(sock.fd(), io, &reply).is_ok());
    if (reply.request_id == 2) {
      // The tight budget dies typed — never a wrong bit, never a hang.
      EXPECT_EQ(error_code_of(reply), WireCode::kDeadlineExceeded);
      ++expired;
    } else {
      ASSERT_EQ(reply.type, MessageType::kPredictReply)
          << "id " << reply.request_id;
      SimulationModel::Prediction p;
      ASSERT_TRUE(net::decode_predict_reply(reply.payload, &p).is_ok());
      EXPECT_EQ(p.bit, want.bit) << "id " << reply.request_id;
      EXPECT_EQ(p.flow_a, want.flow_a) << "id " << reply.request_id;
      EXPECT_EQ(p.flow_b, want.flow_b) << "id " << reply.request_id;
      ++served;
    }
  }
  EXPECT_EQ(served, 2);
  EXPECT_EQ(expired, 1);
  // The unlimited-budget frames really were served from a batch.
  EXPECT_GE(srv.stats().coalesced_items, 2u);
  srv.stop();
}

// ---------------------------------------------------------------------------
// Reordering: a fast coalesced predict legally overtakes a slow request
// that was sent earlier on the same connection.

TEST(Coalescing, RepliesMayOvertakeSlowerRequests) {
  AuthServerOptions o = coalescing_options();
  o.threads = 2;
  o.coalesce_wait_us = 1000;
  AuthServer srv(shared_model(), o);
  ASSERT_TRUE(srv.start().is_ok());
  const util::Deadline io = util::Deadline::after_seconds(10.0);

  net::Socket sock;
  ASSERT_TRUE(
      net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock).is_ok());
  util::Rng rng(42);
  const Challenge c = random_challenge(shared_model().layout(), rng);
  std::vector<std::uint8_t> burst = net::encode_frame(
      MessageType::kPingRequest, 1, 0, 0, net::encode_ping_request(100));
  const std::vector<std::uint8_t> predict = net::encode_frame(
      MessageType::kPredictRequest, 2, 0, 0, net::encode_predict_request(c));
  burst.insert(burst.end(), predict.begin(), predict.end());
  ASSERT_TRUE(
      net::send_all(sock.fd(), burst.data(), burst.size(), io).is_ok());

  // The predict (worker 2, ~ms) finishes while the ping (worker 1) still
  // sleeps: the reply stream reorders, ids keep everything attributable.
  Frame first, second;
  ASSERT_TRUE(read_frame(sock.fd(), io, &first).is_ok());
  ASSERT_TRUE(read_frame(sock.fd(), io, &second).is_ok());
  EXPECT_EQ(first.request_id, 2u);
  EXPECT_EQ(first.type, MessageType::kPredictReply);
  EXPECT_EQ(second.request_id, 1u);
  EXPECT_EQ(second.type, MessageType::kPingReply);
  srv.stop();
}

// ---------------------------------------------------------------------------
// Desync: a reply id that matches nothing outstanding must never be
// attributed to the oldest waiter.

TEST(Coalescing, PipelinedClientRejectsUnknownReplyIdAndResyncs) {
  // A confused peer: accepts one connection, reads one frame, answers it
  // with the WRONG request id (as a stale or cross-talked reply would).
  net::Socket listener;
  std::uint16_t port = 0;
  ASSERT_TRUE(net::listen_tcp(0, 4, &listener, &port).is_ok());
  std::atomic<bool> served{false};
  std::thread peer([&] {
    const util::Deadline accept_by = util::Deadline::after_seconds(5.0);
    int fd = -1;
    while (fd < 0 && !accept_by.expired()) {
      fd = ::accept(listener.fd(), nullptr, nullptr);  // non-blocking
      if (fd < 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (fd < 0) return;
    Frame request;
    if (net::read_frame(fd, &request, accept_by).is_ok()) {
      SimulationModel::Prediction p;
      p.bit = 1;
      const std::vector<std::uint8_t> reply = net::encode_frame(
          MessageType::kPredictReply, request.request_id + 1234,
          request.device_id, 0, net::encode_predict_reply(p));
      if (net::send_all(fd, reply.data(), reply.size(), accept_by).is_ok())
        served.store(true);
    }
    // Leave the socket open so the client sees the bad id, not a close.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ::close(fd);
  });

  net::ClientOptions copts;
  copts.pipeline_depth = 2;
  copts.max_attempts = 1;
  AuthClient client("127.0.0.1", port, copts);
  util::Rng rng(43);
  const std::vector<Challenge> one{
      random_challenge(shared_model().layout(), rng)};
  std::vector<SimulationModel::Prediction> out;
  const Status s = client.predict_pipelined(one, &out);
  peer.join();
  ASSERT_TRUE(served.load());
  // Typed desync error, connection dropped, and the item's prediction was
  // NOT populated from the impostor reply.
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.to_string();
  EXPECT_NE(s.message().find("matches no outstanding request"),
            std::string::npos)
      << s.to_string();
  EXPECT_FALSE(client.connected());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].ok());
}

// ---------------------------------------------------------------------------
// Late replies: a timed-out request's answer must never be credited to the
// next request on that connection.

TEST(Coalescing, LateReplyNeverMisattributedAfterTimeout) {
  AuthServer srv(shared_model(), coalescing_options());
  ASSERT_TRUE(srv.start().is_ok());

  net::ClientOptions copts;
  copts.request_timeout_ms = 50;
  copts.max_attempts = 1;  // surface the timeout instead of retrying
  AuthClient client("127.0.0.1", srv.port(), copts);

  // The server will answer this ping at ~120 ms — after the client's 50 ms
  // attempt budget.  The client must time out typed and DROP the socket,
  // so the late reply dies with the connection instead of waiting to be
  // misattributed to the next request.
  Status s = client.ping(120);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.to_string();
  EXPECT_FALSE(client.connected());

  net::HealthInfo health;
  ASSERT_TRUE(client.ping(0, {}, &health).is_ok());
  EXPECT_EQ(client.stats().reconnects, 2u);  // fresh socket per attempt

  // Same property under injected transport latency (the fault-hook path):
  // every client socket op stalls 200 ms, the 50 ms budget dies typed,
  // and the connection is torn down before the late bytes arrive.
  auto& hooks = util::FaultHooks::instance();
  hooks.net_latency_ppm.store(1'000'000);
  hooks.net_latency_us.store(200'000);
  s = client.ping(0);
  hooks.net_latency_ppm.store(0);
  hooks.net_latency_us.store(0);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.to_string();
  EXPECT_FALSE(client.connected());
  ASSERT_TRUE(client.ping().is_ok());
  EXPECT_EQ(client.stats().reconnects, 3u);
  srv.stop();
}

// ---------------------------------------------------------------------------
// Slow peers: a connection that never drains its replies hits the backlog
// bound and is disconnected; workers and other connections stay live.

TEST(Coalescing, SlowPeerIsDisconnectedAtBacklogBound) {
  AuthServerOptions o = per_frame_options();
  o.threads = 1;
  o.max_connection_backlog_bytes = 256;
  AuthServer srv(shared_model(), o);
  ASSERT_TRUE(srv.start().is_ok());
  const util::Deadline io = util::Deadline::after_seconds(10.0);

  // Simulate a peer whose socket never drains: every server-side send
  // reports EAGAIN, so replies pile up in the connection's outbound queue
  // (deterministic — real kernel socket buffers would absorb megabytes).
  util::FaultHooks::instance().server_send_block.store(true);

  net::Socket slow;
  ASSERT_TRUE(
      net::connect_tcp("127.0.0.1", srv.port(), 2000, &slow).is_ok());
  for (std::uint64_t id = 1; id <= 10; ++id) {
    const std::vector<std::uint8_t> f = net::encode_frame(
        MessageType::kPingRequest, id, 0, 0, net::encode_ping_request(0));
    ASSERT_TRUE(net::send_all(slow.fd(), f.data(), f.size(), io).is_ok());
  }

  // The backlog bound trips without any worker blocking on the peer.
  const auto wait_until = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
  while (srv.stats().slow_peer_disconnects == 0 &&
         std::chrono::steady_clock::now() < wait_until)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  util::FaultHooks::instance().server_send_block.store(false);
  EXPECT_GE(srv.stats().slow_peer_disconnects, 1u);

  // The event loop and worker never wedged: a healthy client is served.
  AuthClient healthy("127.0.0.1", srv.port());
  EXPECT_TRUE(healthy.ping().is_ok());

  // And the slow peer really was cut off.
  Frame reply;
  EXPECT_FALSE(
      read_frame(slow.fd(), util::Deadline::after_seconds(2.0), &reply)
          .is_ok());
  srv.stop();
  util::FaultHooks::instance().reset();
}

}  // namespace
}  // namespace ppuf
