// Tests for the phase-synchronous parallel push-relabel solver.
#include <gtest/gtest.h>

#include "graph/complete.hpp"
#include "maxflow/parallel_push_relabel.hpp"
#include "maxflow/verify.hpp"
#include "util/rng.hpp"

namespace ppuf::maxflow {
namespace {

using graph::Digraph;

Digraph clrs_graph() {
  Digraph g(6);
  g.add_edge(0, 1, 16);
  g.add_edge(0, 2, 13);
  g.add_edge(1, 3, 12);
  g.add_edge(2, 1, 4);
  g.add_edge(2, 4, 14);
  g.add_edge(3, 2, 9);
  g.add_edge(3, 5, 20);
  g.add_edge(4, 3, 7);
  g.add_edge(4, 5, 4);
  g.finalize();
  return g;
}

class ThreadCounts : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadCounts, ClrsExample) {
  const Digraph g = clrs_graph();
  const ParallelPushRelabel solver(GetParam());
  const FlowResult r = solver.solve({&g, 0, 5});
  EXPECT_NEAR(r.value, 23.0, 1e-9);
  const VerifyResult v = verify_flow(g, 0, 5, r.edge_flow, 1e-9);
  EXPECT_TRUE(v.optimal) << v.reason;
}

TEST_P(ThreadCounts, SeriesBottleneck) {
  Digraph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  const ParallelPushRelabel solver(GetParam());
  EXPECT_NEAR(solver.solve({&g, 0, 2}).value, 2.0, 1e-12);
}

TEST_P(ThreadCounts, DisconnectedSink) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const ParallelPushRelabel solver(GetParam());
  EXPECT_DOUBLE_EQ(solver.solve({&g, 0, 2}).value, 0.0);
}

TEST_P(ThreadCounts, MatchesSequentialOnRandomGraphs) {
  const ParallelPushRelabel parallel(GetParam());
  const auto sequential = make_solver(Algorithm::kDinic);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    const bool complete = seed % 2 == 0;
    const std::size_t n = 16 + 4 * seed;
    const Digraph g = complete
                          ? graph::make_complete_uniform(n, rng)
                          : graph::make_random(n, 0.25, rng);
    const auto t = static_cast<graph::VertexId>(n - 1);
    const double expected = sequential->solve({&g, 0, t}).value;
    const FlowResult r = parallel.solve({&g, 0, t});
    EXPECT_NEAR(r.value, expected, 1e-9 * std::max(1.0, expected))
        << "seed " << seed;
    const VerifyResult v = verify_flow(g, 0, t, r.edge_flow, 1e-9);
    EXPECT_TRUE(v.optimal) << v.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCounts,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ParallelPushRelabel, ZeroThreadsClampedToOne) {
  const ParallelPushRelabel solver(0);
  EXPECT_EQ(solver.thread_count(), 1u);
}

TEST(ParallelPushRelabel, SourceEqualsSinkThrows) {
  const Digraph g = clrs_graph();
  EXPECT_THROW(ParallelPushRelabel(2).solve({&g, 1, 1}),
               std::invalid_argument);
}

TEST(ParallelPushRelabel, DeterministicValueAcrossRuns) {
  util::Rng rng(9);
  const Digraph g = graph::make_complete_uniform(24, rng);
  const ParallelPushRelabel solver(4);
  const double v1 = solver.solve({&g, 0, 23}).value;
  const double v2 = solver.solve({&g, 0, 23}).value;
  // The flow *function* may differ between runs (schedule-dependent), but
  // the value is the max-flow value both times.
  EXPECT_NEAR(v1, v2, 1e-9 * std::max(1.0, v1));
}

}  // namespace
}  // namespace ppuf::maxflow
