// Tests for the PPUF building block: the paper's three requirements
// (Section 3.1) plus characterisation sanity.
#include <gtest/gtest.h>

#include "ppuf/block.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace ppuf {
namespace {

using circuit::BlockVariation;
using circuit::Environment;

const Environment kNominal = Environment::nominal();

TEST(Block, NominalCurveIsMonotoneAndSaturates) {
  const BlockCurve c =
      characterize_block(PpufParams{}, BlockVariation{}, 1, kNominal);
  EXPECT_GT(c.isat, 1e-9);   // tens of nA
  EXPECT_LT(c.isat, 1e-6);
  double prev = c.iv(-0.3);
  for (double v = -0.3; v <= 2.4; v += 0.01) {
    double g = 0.0;
    const double i = c.iv(v, &g);
    EXPECT_GE(g, -1e-18);
    EXPECT_GE(i, prev - 1e-18);
    prev = i;
  }
  // Saturation: current at 2 V within 1% of the capacity reference.
  EXPECT_NEAR(c.iv(2.0), c.isat, 0.01 * c.isat);
}

TEST(Block, DiodeBlocksReverseDirection) {
  const BlockCurve c =
      characterize_block(PpufParams{}, BlockVariation{}, 1, kNominal);
  EXPECT_LT(std::abs(c.iv(-0.2)), 1e-3 * c.isat);
}

TEST(Block, Requirement1SaturationCurrentControllable) {
  // Larger control voltage -> larger saturation current (Fig. 3b).
  PpufParams p;
  double prev_isat = 0.0;
  for (const double vgs : {0.45, 0.50, 0.55, 0.60}) {
    p.vgs_low = vgs;
    const BlockCurve c =
        characterize_block(p, BlockVariation{}, 1, kNominal);
    EXPECT_GT(c.isat, prev_isat);
    prev_isat = c.isat;
  }
}

TEST(Block, SourceDegenerationSuppressesSceInOrder) {
  // Fig. 3a: saturation-current change over the plateau shrinks from the
  // bare design to 1-level to 2-level SD.
  PpufParams p;
  const std::vector<double> probe{1.0, 2.0};
  std::vector<double> change;
  for (const BlockDesign d :
       {BlockDesign::kBare, BlockDesign::kSingleSd, BlockDesign::kDoubleSd}) {
    SweepCircuit sc = build_stage_test(p, d, p.vgs_low, nullptr, kNominal);
    const std::vector<double> i = sweep_current(sc, probe, kNominal);
    change.push_back((i[1] - i[0]) / i[0]);
  }
  EXPECT_GT(change[0], change[1]);
  EXPECT_GT(change[1], change[2]);
  EXPECT_GT(change[0], 0.10);   // bare: strong SCE (>10%/V)
  EXPECT_LT(change[2], 0.01);   // 2-level SD: < 1%/V
}

TEST(Block, Requirement2VariationDominatesSce) {
  // Monte-Carlo spread of Isat must be far larger than the SCE-induced
  // current change across the plateau (paper reports ~130x).
  PpufParams p;
  util::Rng rng(5);
  util::RunningStats isat;
  util::RunningStats sce;
  for (int i = 0; i < 60; ++i) {
    const BlockVariation v = circuit::draw_block_variation(p.variation, rng);
    const BlockCurve c = characterize_block(p, v, 1, kNominal);
    isat.add(c.isat);
    sce.add(std::abs(c.iv(2.0) - c.iv(1.0)));
  }
  // Variation amplitude vs the typical SCE-induced change (the paper
  // reports ~130x with two-level SD; the exact ratio depends on the device
  // card, so assert the order of magnitude).
  EXPECT_GT(isat.stddev(), 50.0 * sce.mean());
}

TEST(Block, Requirement3ComplementaryStagesLimit) {
  // Nominal: input 0 and input 1 give (almost) the same saturation current.
  PpufParams p;
  const BlockCurve c0 = characterize_block(p, BlockVariation{}, 0, kNominal);
  const BlockCurve c1 = characterize_block(p, BlockVariation{}, 1, kNominal);
  EXPECT_NEAR(c0.isat, c1.isat, 0.01 * c1.isat);

  // Under variation, the two input states are limited by different
  // transistors: perturbing stage A's limiting device moves only the
  // input-1 current.
  BlockVariation va{};
  va.dvth[1] = 0.05;  // M2 of stage A (limits when input = 1)
  const BlockCurve a0 = characterize_block(p, va, 0, kNominal);
  const BlockCurve a1 = characterize_block(p, va, 1, kNominal);
  EXPECT_NEAR(a0.isat, c0.isat, 0.03 * c0.isat);      // barely moves
  EXPECT_LT(a1.isat, 0.9 * c1.isat);                  // strongly reduced

  BlockVariation vb{};
  vb.dvth[3] = 0.05;  // M4 of stage B (limits when input = 0)
  const BlockCurve b0 = characterize_block(p, vb, 0, kNominal);
  const BlockCurve b1 = characterize_block(p, vb, 1, kNominal);
  EXPECT_LT(b0.isat, 0.9 * c0.isat);
  EXPECT_NEAR(b1.isat, c1.isat, 0.03 * c1.isat);
}

TEST(Block, VthVariationShiftsIsatMonotonically) {
  PpufParams p;
  double prev = 1.0;
  for (const double dvth : {-0.05, 0.0, 0.05}) {
    BlockVariation v{};
    v.dvth[1] = dvth;  // limiting device for input 1
    const BlockCurve c = characterize_block(p, v, 1, kNominal);
    EXPECT_LT(c.isat, prev);  // higher vth -> lower current
    prev = c.isat;
  }
}

TEST(Block, EnvironmentShiftsCurve) {
  PpufParams p;
  const BlockCurve nom = characterize_block(p, BlockVariation{}, 1, kNominal);
  Environment hot;
  hot.temperature_c = 80.0;
  const BlockCurve h = characterize_block(p, BlockVariation{}, 1, hot);
  EXPECT_NE(h.isat, nom.isat);
  Environment low_vdd;
  low_vdd.vdd_scale = 0.9;
  const BlockCurve lv =
      characterize_block(p, BlockVariation{}, 1, low_vdd);
  EXPECT_LT(lv.isat, nom.isat);  // lower control voltages -> lower Isat
}

TEST(Block, BadInputBitThrows) {
  EXPECT_THROW(build_block(PpufParams{}, BlockVariation{}, 2, kNominal),
               std::invalid_argument);
}

TEST(Block, CharacterizationGridCoversSweepRange) {
  PpufParams p;
  const std::vector<double> grid = characterization_grid(p);
  ASSERT_GE(grid.size(), 10u);
  EXPECT_LT(grid.front(), 0.0);
  EXPECT_GE(grid.back(), p.sweep_max_voltage - 0.2);
  for (std::size_t i = 1; i < grid.size(); ++i)
    EXPECT_GT(grid[i], grid[i - 1]);
}

}  // namespace
}  // namespace ppuf
