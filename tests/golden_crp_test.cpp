// Golden CRP regression vectors.
//
// tests/data/golden_crps.json pins, for one fixed-seed instance, the full
// CRP pipeline end to end: the challenge stream a seed produces, the
// silicon response bits (noiseless evaluate()), and the public model's two
// max-flow values per challenge.  ANY drift — challenge sampling, device
// physics, solver behaviour, model extraction — fails here with a precise
// diff instead of silently shifting every statistical bench.  This file
// replaces the ad-hoc frozen seeds that used to live in regression_test.cpp
// (the 24-bit frozen stream moved here verbatim: same instance seed 31415,
// same challenge seed 9).
//
// Intentional changes (e.g. a recalibrated device card) re-record with:
//   PPUF_UPDATE_GOLDEN=1 ./golden_crp_test
// and a review of the resulting JSON diff.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/dc.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "util/rng.hpp"

namespace ppuf {
namespace {

constexpr std::size_t kNodeCount = 8;
constexpr std::size_t kGridSize = 4;
constexpr std::uint64_t kFabricationSeed = 31415;
constexpr std::uint64_t kChallengeSeed = 9;
constexpr std::size_t kCrpCount = 24;

#ifndef PPUF_TEST_DATA_DIR
#error "PPUF_TEST_DATA_DIR must be defined by the build"
#endif

std::string golden_path() {
  return std::string(PPUF_TEST_DATA_DIR) + "/golden_crps.json";
}

struct GoldenCrp {
  std::size_t index = 0;
  graph::VertexId source = 0;
  graph::VertexId sink = 0;
  std::string bits;
  int silicon_bit = 0;
  int model_bit = 0;
  double flow_a = 0.0;
  double flow_b = 0.0;
};

struct GoldenFile {
  std::size_t node_count = 0;
  std::size_t grid_size = 0;
  std::uint64_t fabrication_seed = 0;
  std::uint64_t challenge_seed = 0;
  std::vector<GoldenCrp> crps;
};

// --- minimal parser for the file's own fixed JSON shape -------------------

/// Value token following `"key":` inside `text`, starting at `from`.
/// Handles numbers and quoted strings; this is a schema-specific reader,
/// not a JSON library.
std::string extract_value(const std::string& text, const std::string& key,
                          std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos)
    throw std::runtime_error("golden file: missing key " + key);
  std::size_t i = at + needle.size();
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (i < text.size() && text[i] == '"') {
    const std::size_t end = text.find('"', i + 1);
    if (end == std::string::npos)
      throw std::runtime_error("golden file: unterminated string for " + key);
    return text.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         text[end] != '\n')
    ++end;
  return text.substr(i, end - i);
}

GoldenFile parse_golden(const std::string& text) {
  GoldenFile g;
  g.node_count = std::stoul(extract_value(text, "node_count"));
  g.grid_size = std::stoul(extract_value(text, "grid_size"));
  g.fabrication_seed = std::stoull(extract_value(text, "fabrication_seed"));
  g.challenge_seed = std::stoull(extract_value(text, "challenge_seed"));
  const std::size_t count = std::stoul(extract_value(text, "crp_count"));

  std::size_t cursor = text.find("\"crps\":");
  if (cursor == std::string::npos)
    throw std::runtime_error("golden file: missing crps array");
  for (std::size_t i = 0; i < count; ++i) {
    GoldenCrp crp;
    // Each object carries its index first; anchor all lookups on it so a
    // malformed object cannot borrow fields from its neighbour.
    const std::string idx_needle = "{\"index\": " + std::to_string(i);
    const std::size_t at = text.find(idx_needle, cursor);
    if (at == std::string::npos)
      throw std::runtime_error("golden file: missing crp " +
                               std::to_string(i));
    crp.index = i;
    crp.source = static_cast<graph::VertexId>(
        std::stoul(extract_value(text, "source", at)));
    crp.sink = static_cast<graph::VertexId>(
        std::stoul(extract_value(text, "sink", at)));
    crp.bits = extract_value(text, "bits", at);
    crp.silicon_bit = std::stoi(extract_value(text, "silicon_bit", at));
    crp.model_bit = std::stoi(extract_value(text, "model_bit", at));
    crp.flow_a = std::stod(extract_value(text, "flow_a", at));
    crp.flow_b = std::stod(extract_value(text, "flow_b", at));
    g.crps.push_back(crp);
    cursor = at + idx_needle.size();
  }
  return g;
}

// --- generation (shared by update mode and the test itself) ---------------

std::string bits_to_string(const Challenge& c) {
  std::string s;
  for (const auto b : c.bits) s.push_back(b ? '1' : '0');
  return s;
}

/// Recompute the full golden record from the fixed seeds.
std::vector<GoldenCrp> compute_current() {
  PpufParams params;
  params.node_count = kNodeCount;
  params.grid_size = kGridSize;
  MaxFlowPpuf puf(params, kFabricationSeed);
  SimulationModel model(puf);
  util::Rng rng(kChallengeSeed);

  std::vector<GoldenCrp> crps;
  for (std::size_t i = 0; i < kCrpCount; ++i) {
    const Challenge c = random_challenge(puf.layout(), rng);
    GoldenCrp crp;
    crp.index = i;
    crp.source = c.source;
    crp.sink = c.sink;
    crp.bits = bits_to_string(c);
    crp.silicon_bit = puf.evaluate(c).bit;
    const auto p = model.predict(c);
    crp.model_bit = p.bit;
    crp.flow_a = p.flow_a;
    crp.flow_b = p.flow_b;
    crps.push_back(crp);
  }
  return crps;
}

void write_golden(const std::string& path,
                  const std::vector<GoldenCrp>& crps) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << "{\n";
  out << "  \"schema\": \"ppuf-golden-crps-v1\",\n";
  out << "  \"node_count\": " << kNodeCount << ",\n";
  out << "  \"grid_size\": " << kGridSize << ",\n";
  out << "  \"fabrication_seed\": " << kFabricationSeed << ",\n";
  out << "  \"challenge_seed\": " << kChallengeSeed << ",\n";
  out << "  \"crp_count\": " << crps.size() << ",\n";
  out << "  \"crps\": [\n";
  out << std::scientific << std::setprecision(17);
  for (std::size_t i = 0; i < crps.size(); ++i) {
    const GoldenCrp& c = crps[i];
    out << "    {\"index\": " << c.index << ", \"source\": " << c.source
        << ", \"sink\": " << c.sink << ", \"bits\": \"" << c.bits
        << "\", \"silicon_bit\": " << c.silicon_bit
        << ", \"model_bit\": " << c.model_bit << ", \"flow_a\": " << c.flow_a
        << ", \"flow_b\": " << c.flow_b << "}"
        << (i + 1 == crps.size() ? "" : ",") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

TEST(GoldenCrp, RecordedVectorsMatchCurrentBehaviour) {
  if (std::getenv("PPUF_UPDATE_GOLDEN") != nullptr) {
    write_golden(golden_path(), compute_current());
    GTEST_SKIP() << "golden file re-recorded at " << golden_path()
                 << "; review the diff and commit";
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing " << golden_path()
                  << " (generate with PPUF_UPDATE_GOLDEN=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const GoldenFile golden = parse_golden(buffer.str());

  ASSERT_EQ(golden.node_count, kNodeCount);
  ASSERT_EQ(golden.grid_size, kGridSize);
  ASSERT_EQ(golden.fabrication_seed, kFabricationSeed);
  ASSERT_EQ(golden.challenge_seed, kChallengeSeed);
  ASSERT_EQ(golden.crps.size(), kCrpCount);

  const std::vector<GoldenCrp> current = compute_current();
  for (std::size_t i = 0; i < kCrpCount; ++i) {
    const GoldenCrp& want = golden.crps[i];
    const GoldenCrp& got = current[i];
    // Challenge stream drift (RNG or sampling change) is its own failure
    // mode, distinct from response drift.
    EXPECT_EQ(got.source, want.source) << "challenge stream drift, crp " << i;
    EXPECT_EQ(got.sink, want.sink) << "challenge stream drift, crp " << i;
    EXPECT_EQ(got.bits, want.bits) << "challenge stream drift, crp " << i;
    // Response bits are exact; flows allow only float-level slack so that
    // any real solver or physics change trips the test.
    EXPECT_EQ(got.silicon_bit, want.silicon_bit) << "silicon drift, crp "
                                                 << i;
    EXPECT_EQ(got.model_bit, want.model_bit) << "model drift, crp " << i;
    const double tol_a = 1e-9 * std::abs(want.flow_a);
    const double tol_b = 1e-9 * std::abs(want.flow_b);
    EXPECT_NEAR(got.flow_a, want.flow_a, tol_a) << "flow drift, crp " << i;
    EXPECT_NEAR(got.flow_b, want.flow_b, tol_b) << "flow drift, crp " << i;
  }
}

TEST(GoldenCrp, DenseOracleReproducesGoldenCorpusBitForBit) {
  // The goldens were recorded with the dense linear core; the sparse core
  // is now the default, so RecordedVectorsMatchCurrentBehaviour already
  // pins sparse-vs-goldens.  This leg closes the triangle: recompute the
  // whole corpus through the dense oracle and demand identical response
  // bits (and solver-tolerance flows) against the sparse recomputation.
  const std::vector<GoldenCrp> sparse = compute_current();
  std::vector<GoldenCrp> dense;
  circuit::set_default_dense_solver(true);
  try {
    dense = compute_current();
  } catch (...) {
    circuit::set_default_dense_solver(false);
    throw;
  }
  circuit::set_default_dense_solver(false);

  ASSERT_EQ(sparse.size(), dense.size());
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    EXPECT_EQ(sparse[i].bits, dense[i].bits) << "crp " << i;
    EXPECT_EQ(sparse[i].silicon_bit, dense[i].silicon_bit)
        << "sparse/dense silicon bit drift, crp " << i;
    EXPECT_EQ(sparse[i].model_bit, dense[i].model_bit)
        << "sparse/dense model bit drift, crp " << i;
    EXPECT_NEAR(sparse[i].flow_a, dense[i].flow_a,
                1e-9 * std::abs(dense[i].flow_a))
        << "crp " << i;
    EXPECT_NEAR(sparse[i].flow_b, dense[i].flow_b,
                1e-9 * std::abs(dense[i].flow_b))
        << "crp " << i;
  }
}

TEST(GoldenCrp, SiliconAndModelBitsAgreeOnTheGoldenStream) {
  // The golden instance is also a compact execution-vs-simulation check:
  // on this instance the noiseless silicon bit and the model bit agree on
  // every recorded challenge (no challenge sits inside the comparator's
  // inaccuracy band for this draw).
  for (const GoldenCrp& crp : compute_current())
    EXPECT_EQ(crp.silicon_bit, crp.model_bit) << "crp " << crp.index;
}

}  // namespace
}  // namespace ppuf
