// Tests for src/numeric: matrix, LU, Cholesky, sparse matrix + sparse LU.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "numeric/cholesky.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/sparse.hpp"
#include "numeric/sparse_lu.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace ppuf::numeric {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RejectsRaggedInitializer) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplicationIsNeutral) {
  const Matrix i = Matrix::identity(3);
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const Matrix p = m.multiply(i);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(p(r, c), m(r, c));
}

TEST(Matrix, TransposeInvolution) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix tt = m.transposed().transposed();
  EXPECT_EQ(tt.rows(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      EXPECT_DOUBLE_EQ(tt(r, c), m(r, c));
}

TEST(Matrix, MatVecKnownProduct) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = m.multiply(std::vector<double>{5.0, 6.0});
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Matrix, MatVecSizeMismatchThrows) {
  const Matrix m{{1.0, 2.0}};
  EXPECT_THROW(m.multiply(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(VectorOps, DotAxpyNorms) {
  const std::vector<double> a{1.0, 2.0, 2.0};
  const std::vector<double> b{2.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 2.0);
  std::vector<double> y{1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(Lu, SolvesKnownSystem) {
  // x + 2y = 5; 3x + 4y = 11  ->  x = 1, y = 2
  Vector x;
  ASSERT_TRUE(
      lu_solve(Matrix{{1.0, 2.0}, {3.0, 4.0}}, Vector{5.0, 11.0}, &x)
          .is_ok());
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  // Leading zero forces a row swap.
  Vector x;
  ASSERT_TRUE(
      lu_solve(Matrix{{0.0, 1.0}, {1.0, 0.0}}, Vector{3.0, 7.0}, &x).is_ok());
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

// Regression for the serving-worker crash path: a singular system must come
// back as a typed Status (kInvalidArgument), never as a thrown
// std::runtime_error that can kill a worker mid-batch.
TEST(Lu, SingularReportsTypedStatus) {
  const LuDecomposition lu(Matrix{{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), util::StatusCode::kInvalidArgument);
  Vector x;
  EXPECT_EQ(lu.solve(Vector{1.0, 1.0}, &x).code(),
            util::StatusCode::kInvalidArgument);

  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  Vector b{1.0, 1.0};
  EXPECT_EQ(solve_in_place(a, b).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(lu_solve(Matrix{{1.0, 2.0}, {2.0, 4.0}}, Vector{1.0, 1.0}, &x)
                .code(),
            util::StatusCode::kInvalidArgument);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, DeterminantKnown) {
  const LuDecomposition lu(Matrix{{2.0, 0.0}, {0.0, 3.0}});
  EXPECT_NEAR(lu.determinant(), 6.0, 1e-12);
  const LuDecomposition swapped(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(swapped.determinant(), -1.0, 1e-12);
}

TEST(Lu, MultipleRhsReuseFactorisation) {
  const LuDecomposition lu(Matrix{{4.0, 1.0}, {1.0, 3.0}});
  ASSERT_TRUE(lu.ok());
  Vector x1, x2;
  ASSERT_TRUE(lu.solve(Vector{1.0, 0.0}, &x1).is_ok());
  ASSERT_TRUE(lu.solve(Vector{0.0, 1.0}, &x2).is_ok());
  // Columns of the inverse of [[4,1],[1,3]] = 1/11 [[3,-1],[-1,4]].
  EXPECT_NEAR(x1[0], 3.0 / 11.0, 1e-12);
  EXPECT_NEAR(x1[1], -1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x2[0], -1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x2[1], 4.0 / 11.0, 1e-12);
}

TEST(Cholesky, SolvesSpdSystem) {
  const Vector x =
      cholesky_solve(Matrix{{4.0, 2.0}, {2.0, 3.0}}, Vector{10.0, 8.0});
  EXPECT_NEAR(x[0], 7.0 / 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0 / 2.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  EXPECT_THROW(CholeskyDecomposition(Matrix{{1.0, 2.0}, {2.0, 1.0}}),
               std::runtime_error);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(CholeskyDecomposition(Matrix(2, 3)), std::invalid_argument);
}

/// Property: on random SPD systems, Cholesky and LU agree and the solution
/// satisfies A x = b.
class SpdSolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpdSolveProperty, CholeskyMatchesLuAndResidualSmall) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + static_cast<std::size_t>(GetParam()) % 20;
  // A = B^T B + n I is SPD.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.gaussian();
  Matrix a = b.transposed().multiply(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  Vector rhs(n);
  for (auto& v : rhs) v = rng.gaussian();

  const Vector x_chol = cholesky_solve(a, rhs);
  Vector x_lu;
  ASSERT_TRUE(lu_solve(a, rhs, &x_lu).is_ok());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_chol[i], x_lu[i], 1e-8);

  const Vector ax = a.multiply(x_chol);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomSpd, SpdSolveProperty,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// SparseMatrix structure + hostile-input behaviour
// ---------------------------------------------------------------------------

TEST(Sparse, FromTripletsBuildsSortedCsr) {
  // Out-of-order columns and rows: CSR must come out sorted either way.
  const std::vector<Triplet> t{{1, 2, 3.0}, {0, 1, 2.0}, {1, 0, 4.0},
                               {0, 0, 1.0}};
  std::vector<std::size_t> slots;
  const SparseMatrix m = SparseMatrix::from_triplets(2, 3, t, &slots);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_DOUBLE_EQ(m.to_dense()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.to_dense()(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.to_dense()(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.to_dense()(1, 2), 3.0);
  // Column indices ascend within each row.
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t k = m.row_ptr()[r] + 1; k < m.row_ptr()[r + 1]; ++k)
      EXPECT_LT(m.col_idx()[k - 1], m.col_idx()[k]);
  // The slot map traces each input triplet to its value slot.
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_DOUBLE_EQ(m.values()[slots[i]], t[i].value);
}

TEST(Sparse, DuplicateTripletsAccumulate) {
  const std::vector<Triplet> t{{0, 0, 1.5}, {0, 0, 2.5}, {1, 1, -1.0}};
  std::vector<std::size_t> slots;
  const SparseMatrix m = SparseMatrix::from_triplets(2, 2, t, &slots);
  EXPECT_EQ(m.nnz(), 2u);  // duplicates merged
  EXPECT_DOUBLE_EQ(m.to_dense()(0, 0), 4.0);
  EXPECT_EQ(slots[0], slots[1]);  // both duplicates share one slot
}

TEST(Sparse, OutOfRangeTripletThrows) {
  const std::vector<Triplet> t{{2, 0, 1.0}};
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, t), std::invalid_argument);
}

TEST(Sparse, DenseRoundTripOnRandomPatterns) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(trial);
    Matrix dense(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        if (rng.uniform() < 0.35) dense(r, c) = rng.gaussian();
    const SparseMatrix sp = SparseMatrix::from_dense(dense);
    const Matrix back = sp.to_dense();
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        EXPECT_DOUBLE_EQ(back(r, c), dense(r, c));
    // multiply() agrees with the dense product.
    Vector x(n);
    for (auto& v : x) v = rng.gaussian();
    const Vector ys = sp.multiply(x);
    const Vector yd = dense.multiply(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
  }
}

TEST(Sparse, PatternHashAndSlotLookup) {
  const std::vector<Triplet> t{{0, 0, 1.0}, {1, 1, 2.0}, {0, 1, 3.0}};
  SparseMatrix a = SparseMatrix::from_triplets(2, 2, t);
  SparseMatrix b = SparseMatrix::from_triplets(
      2, 2, std::vector<Triplet>{{0, 1, 9.0}, {1, 1, 8.0}, {0, 0, 7.0}});
  EXPECT_TRUE(a.same_pattern(b));
  EXPECT_EQ(a.pattern_hash(), b.pattern_hash());
  EXPECT_NE(a.find_slot(0, 1), SparseMatrix::npos);
  EXPECT_EQ(a.find_slot(1, 0), SparseMatrix::npos);
  a.zero_values();
  for (const double v : a.values()) EXPECT_EQ(v, 0.0);
}

// ---------------------------------------------------------------------------
// Sparse LU: round-trip vs dense, typed singular errors, pattern reuse
// ---------------------------------------------------------------------------

namespace {

/// Random diagonally-dominant sparse system (always solvable).
SparseMatrix random_system(util::Rng& rng, std::size_t n, double density) {
  std::vector<Triplet> t;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      if (rng.uniform() < density) t.push_back({r, c, rng.gaussian()});
    }
    t.push_back({r, r, 4.0 + static_cast<double>(n) + rng.uniform()});
  }
  return SparseMatrix::from_triplets(n, n, t);
}

}  // namespace

TEST(SparseLu, MatchesDenseLuOnRandomPatterns) {
  util::Rng rng(777);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(trial) * 3;
    const SparseMatrix a = random_system(rng, n, 0.25);
    Vector b(n);
    for (auto& v : b) v = rng.gaussian();

    SparseLu lu;
    ASSERT_TRUE(lu.factorize(a).is_ok());
    Vector xs;
    ASSERT_TRUE(lu.solve(b, &xs).is_ok());

    Vector xd;
    ASSERT_TRUE(lu_solve(a.to_dense(), b, &xd).is_ok());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);

    // Residual check against the sparse operator itself.
    const Vector ax = a.multiply(xs);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
  }
}

TEST(SparseLu, SingularTypedErrorMatchesDenseLadder) {
  // Second row is a multiple of the first: structurally fine, numerically
  // singular.  Both solvers must answer with kInvalidArgument — neither may
  // throw (the no throw-crash divergence the differential layer relies on).
  const std::vector<Triplet> t{{0, 0, 1.0}, {0, 1, 2.0},
                               {1, 0, 2.0}, {1, 1, 4.0}};
  const SparseMatrix a = SparseMatrix::from_triplets(2, 2, t);
  SparseLu lu;
  const util::Status sparse_status = lu.factorize(a);
  EXPECT_EQ(sparse_status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(lu.ok());

  const LuDecomposition dense(a.to_dense());
  EXPECT_EQ(dense.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SparseLu, HostileInputsTypedErrors) {
  SparseLu lu;
  EXPECT_EQ(lu.factorize(SparseMatrix()).code(),
            util::StatusCode::kInvalidArgument);  // empty matrix
  const SparseMatrix rect = SparseMatrix::from_triplets(
      2, 3, std::vector<Triplet>{{0, 0, 1.0}});
  EXPECT_EQ(lu.factorize(rect).code(), util::StatusCode::kInvalidArgument);
  // Solve before (successful) factorisation.
  Vector x;
  EXPECT_EQ(lu.solve(Vector{1.0}, &x).code(),
            util::StatusCode::kInvalidArgument);
  // refactorize with no symbolic analysis held.
  const SparseMatrix ok2 = SparseMatrix::from_triplets(
      2, 2, std::vector<Triplet>{{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_EQ(lu.refactorize(ok2).code(), util::StatusCode::kInvalidArgument);
}

TEST(SparseLu, PatternReuseAfterValueChange) {
  util::Rng rng(4242);
  const std::size_t n = 30;
  SparseMatrix a = random_system(rng, n, 0.2);
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(a).is_ok());
  const auto symbolic = lu.symbolic();
  ASSERT_NE(symbolic, nullptr);

  for (int round = 0; round < 5; ++round) {
    // New values, same pattern: numeric-only replay must stay exact.
    for (double& v : a.values()) v += 0.01 * rng.gaussian();
    ASSERT_TRUE(lu.refactorize(a).is_ok());
    Vector b(n);
    for (auto& v : b) v = rng.gaussian();
    Vector xs, xd;
    ASSERT_TRUE(lu.solve(b, &xs).is_ok());
    ASSERT_TRUE(lu_solve(a.to_dense(), b, &xd).is_ok());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
    // The symbolic analysis object is stable across refactorisations.
    EXPECT_EQ(lu.symbolic(), symbolic);
  }

  // A different pattern must be rejected by the replay path.
  const SparseMatrix other = random_system(rng, n + 1, 0.2);
  EXPECT_EQ(lu.refactorize(other).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(SparseLu, SharedSymbolicAcrossInstances) {
  util::Rng rng(99);
  const std::size_t n = 20;
  const SparseMatrix a = random_system(rng, n, 0.25);
  SparseLu first;
  ASSERT_TRUE(first.factorize(a).is_ok());

  // Same pattern, different values, a *fresh* instance adopting the shared
  // analysis: no symbolic work, still exact.
  SparseMatrix b = a;
  for (double& v : b.values()) v *= 1.1;
  SparseLu second;
  ASSERT_TRUE(second.refactorize(b, first.symbolic()).is_ok());
  Vector rhs(n);
  for (auto& v : rhs) v = rng.gaussian();
  Vector xs, xd;
  ASSERT_TRUE(second.solve(rhs, &xs).is_ok());
  ASSERT_TRUE(lu_solve(b.to_dense(), rhs, &xd).is_ok());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseLu, RefactorizeReportsDegradedPivots) {
  // Factorise with a dominant (1,1) entry, then swing the values so the
  // frozen pivot order becomes catastrophically bad: the replay must come
  // back kUnavailable (retry with factorize), not return a silently wrong
  // factor or crash.
  const std::vector<Triplet> t{{0, 0, 1e-8}, {0, 1, 1.0},
                               {1, 0, 1.0},  {1, 1, 5.0}};
  SparseMatrix a = SparseMatrix::from_triplets(2, 2, t);
  SparseLu lu;
  ASSERT_TRUE(lu.factorize(a).is_ok());

  SparseMatrix bad = a;
  // Zero the entry the fixed pivot order relies on.
  bad.values()[bad.find_slot(1, 0)] = 0.0;
  bad.values()[bad.find_slot(1, 1)] = 0.0;
  const util::Status st = lu.refactorize(bad);
  EXPECT_FALSE(st.is_ok());
  // Recovery: a fresh factorisation decides for itself.
  EXPECT_EQ(lu.factorize(bad).code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ppuf::numeric
