// Tests for src/numeric: matrix, LU, Cholesky.
#include <gtest/gtest.h>

#include "numeric/cholesky.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "util/rng.hpp"

namespace ppuf::numeric {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RejectsRaggedInitializer) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplicationIsNeutral) {
  const Matrix i = Matrix::identity(3);
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const Matrix p = m.multiply(i);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(p(r, c), m(r, c));
}

TEST(Matrix, TransposeInvolution) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix tt = m.transposed().transposed();
  EXPECT_EQ(tt.rows(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      EXPECT_DOUBLE_EQ(tt(r, c), m(r, c));
}

TEST(Matrix, MatVecKnownProduct) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = m.multiply(std::vector<double>{5.0, 6.0});
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Matrix, MatVecSizeMismatchThrows) {
  const Matrix m{{1.0, 2.0}};
  EXPECT_THROW(m.multiply(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(VectorOps, DotAxpyNorms) {
  const std::vector<double> a{1.0, 2.0, 2.0};
  const std::vector<double> b{2.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 2.0);
  std::vector<double> y{1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(Lu, SolvesKnownSystem) {
  // x + 2y = 5; 3x + 4y = 11  ->  x = 1, y = 2
  const Vector x = lu_solve(Matrix{{1.0, 2.0}, {3.0, 4.0}}, Vector{5.0, 11.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  // Leading zero forces a row swap.
  const Vector x =
      lu_solve(Matrix{{0.0, 1.0}, {1.0, 0.0}}, Vector{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  EXPECT_THROW(LuDecomposition(Matrix{{1.0, 2.0}, {2.0, 4.0}}),
               std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, DeterminantKnown) {
  const LuDecomposition lu(Matrix{{2.0, 0.0}, {0.0, 3.0}});
  EXPECT_NEAR(lu.determinant(), 6.0, 1e-12);
  const LuDecomposition swapped(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(swapped.determinant(), -1.0, 1e-12);
}

TEST(Lu, MultipleRhsReuseFactorisation) {
  const LuDecomposition lu(Matrix{{4.0, 1.0}, {1.0, 3.0}});
  const Vector x1 = lu.solve(Vector{1.0, 0.0});
  const Vector x2 = lu.solve(Vector{0.0, 1.0});
  // Columns of the inverse of [[4,1],[1,3]] = 1/11 [[3,-1],[-1,4]].
  EXPECT_NEAR(x1[0], 3.0 / 11.0, 1e-12);
  EXPECT_NEAR(x1[1], -1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x2[0], -1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x2[1], 4.0 / 11.0, 1e-12);
}

TEST(Cholesky, SolvesSpdSystem) {
  const Vector x =
      cholesky_solve(Matrix{{4.0, 2.0}, {2.0, 3.0}}, Vector{10.0, 8.0});
  EXPECT_NEAR(x[0], 7.0 / 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0 / 2.0, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  EXPECT_THROW(CholeskyDecomposition(Matrix{{1.0, 2.0}, {2.0, 1.0}}),
               std::runtime_error);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(CholeskyDecomposition(Matrix(2, 3)), std::invalid_argument);
}

/// Property: on random SPD systems, Cholesky and LU agree and the solution
/// satisfies A x = b.
class SpdSolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpdSolveProperty, CholeskyMatchesLuAndResidualSmall) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + static_cast<std::size_t>(GetParam()) % 20;
  // A = B^T B + n I is SPD.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.gaussian();
  Matrix a = b.transposed().multiply(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  Vector rhs(n);
  for (auto& v : rhs) v = rng.gaussian();

  const Vector x_chol = cholesky_solve(a, rhs);
  const Vector x_lu = lu_solve(a, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_chol[i], x_lu[i], 1e-8);

  const Vector ax = a.multiply(x_chol);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomSpd, SpdSolveProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace ppuf::numeric
