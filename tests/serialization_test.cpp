// Tests for the public-model serialization (the PPUF's published identity).
#include <gtest/gtest.h>

#include <sstream>

#include "ppuf/sim_model.hpp"

namespace ppuf {
namespace {

PpufParams small_params() {
  PpufParams p;
  p.node_count = 8;
  p.grid_size = 4;
  return p;
}

TEST(Serialization, RoundTripPreservesEverything) {
  MaxFlowPpuf puf(small_params(), 606);
  SimulationModel original(puf);

  std::stringstream ss;
  original.save(ss);
  const SimulationModel restored = SimulationModel::load(ss);

  EXPECT_EQ(restored.layout().node_count(), original.layout().node_count());
  EXPECT_EQ(restored.layout().grid_size(), original.layout().grid_size());
  EXPECT_DOUBLE_EQ(restored.comparator_offset(),
                   original.comparator_offset());
  for (graph::EdgeId e = 0; e < original.layout().edge_count(); ++e) {
    for (int net = 0; net < 2; ++net) {
      for (int bit = 0; bit < 2; ++bit) {
        EXPECT_DOUBLE_EQ(restored.capacity(net, e, bit),
                         original.capacity(net, e, bit));
      }
    }
  }
}

TEST(Serialization, RestoredModelPredictsIdentically) {
  MaxFlowPpuf puf(small_params(), 607);
  SimulationModel original(puf);
  std::stringstream ss;
  original.save(ss);
  const SimulationModel restored = SimulationModel::load(ss);

  util::Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const Challenge c = random_challenge(puf.layout(), rng);
    const auto a = original.predict(c);
    const auto b = restored.predict(c);
    EXPECT_EQ(a.bit, b.bit);
    EXPECT_DOUBLE_EQ(a.flow_a, b.flow_a);
    EXPECT_DOUBLE_EQ(a.flow_b, b.flow_b);
  }
}

TEST(Serialization, RejectsBadHeader) {
  std::stringstream ss("not-a-model 1\n");
  EXPECT_THROW(SimulationModel::load(ss), std::runtime_error);
  std::stringstream v2("ppuf-model 2\nnodes 4 grid 2\n");
  EXPECT_THROW(SimulationModel::load(v2), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedCapacities) {
  MaxFlowPpuf puf(small_params(), 608);
  SimulationModel original(puf);
  std::stringstream ss;
  original.save(ss);
  std::string text = ss.str();
  text.resize(text.size() * 2 / 3);
  std::stringstream cut(text);
  EXPECT_THROW(SimulationModel::load(cut), std::runtime_error);
}

TEST(Serialization, RejectsInvalidGeometry) {
  std::stringstream ss(
      "ppuf-model 1\nnodes 1 grid 1\ncomparator_offset 0\n");
  EXPECT_THROW(SimulationModel::load(ss), std::runtime_error);
  std::stringstream ss2(
      "ppuf-model 1\nnodes 4 grid 9\ncomparator_offset 0\n");
  EXPECT_THROW(SimulationModel::load(ss2), std::runtime_error);
}

TEST(Serialization, RejectsNegativeCapacity) {
  std::stringstream ss(
      "ppuf-model 1\nnodes 2 grid 1\ncomparator_offset 0\n"
      "-1 1 1 1\n1 1 1 1\n");
  EXPECT_THROW(SimulationModel::load(ss), std::runtime_error);
}

}  // namespace
}  // namespace ppuf
