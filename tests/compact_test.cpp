// Tests for the monotone (PCHIP) compact-model interpolation, which carries
// the incremental-passivity guarantee of the block models.
#include <gtest/gtest.h>

#include <cmath>

#include "ppuf/compact.hpp"
#include "util/rng.hpp"

namespace ppuf {
namespace {

TEST(MonotoneCurve, InterpolatesKnotsExactly) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{0.0, 1.0, 4.0, 9.0};
  const MonotoneCurve c(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_DOUBLE_EQ(c(xs[i]), ys[i]);
}

TEST(MonotoneCurve, RejectsBadInput) {
  EXPECT_THROW(MonotoneCurve(std::vector<double>{0.0},
                             std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(MonotoneCurve(std::vector<double>{0.0, 0.0},
                             std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(MonotoneCurve(std::vector<double>{0.0, 1.0},
                             std::vector<double>{2.0, 1.0}),
               std::invalid_argument);
}

TEST(MonotoneCurve, LinearDataReproducedExactly) {
  const std::vector<double> xs{0.0, 0.5, 2.0, 3.0};
  const std::vector<double> ys{1.0, 2.0, 5.0, 7.0};
  const MonotoneCurve c(xs, ys);
  // Piecewise-linear data has matching secants, so PCHIP reproduces the
  // line inside each uniform-slope region.
  EXPECT_NEAR(c(1.0), 3.0, 1e-12);
  EXPECT_NEAR(c(2.5), 6.0, 1e-12);
}

TEST(MonotoneCurve, LinearExtensionOutsideRange) {
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> ys{0.0, 2.0};
  const MonotoneCurve c(xs, ys);
  EXPECT_NEAR(c(2.0), 4.0, 1e-12);
  EXPECT_NEAR(c(-1.0), -2.0, 1e-12);
  double g = 0.0;
  c(5.0, &g);
  EXPECT_NEAR(g, 2.0, 1e-12);
}

TEST(MonotoneCurve, FlatSegmentsStayFlat) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{0.0, 1.0, 1.0, 1.0};
  const MonotoneCurve c(xs, ys);
  EXPECT_NEAR(c(1.5), 1.0, 1e-12);
  EXPECT_NEAR(c(2.5), 1.0, 1e-12);
  double g = -1.0;
  c(2.5, &g);
  EXPECT_NEAR(g, 0.0, 1e-12);
}

TEST(MonotoneCurve, DerivativeMatchesFiniteDifference) {
  const std::vector<double> xs{0.0, 0.5, 1.0, 2.0, 4.0};
  const std::vector<double> ys{0.0, 0.2, 1.0, 1.5, 1.6};
  const MonotoneCurve c(xs, ys);
  for (double x = 0.05; x < 3.9; x += 0.17) {
    double g = 0.0;
    c(x, &g);
    const double h = 1e-6;
    const double fd = (c(x + h) - c(x - h)) / (2 * h);
    EXPECT_NEAR(g, fd, 1e-5 * std::max(1.0, std::abs(fd)));
  }
}

TEST(MonotoneCurve, InverseRoundTrip) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{0.0, 1.0, 4.0, 9.0};
  const MonotoneCurve c(xs, ys);
  for (double y = 0.5; y < 8.5; y += 1.0) {
    const double x = c.inverse(y);
    EXPECT_NEAR(c(x), y, 1e-9);
  }
  EXPECT_THROW(c.inverse(100.0), std::domain_error);
}

TEST(MonotoneCurve, EmptyEvaluationThrows) {
  const MonotoneCurve c;
  EXPECT_TRUE(c.empty());
  EXPECT_THROW(c(0.5), std::logic_error);
}

/// Property: for random monotone data, the interpolant is monotone
/// everywhere (derivative >= 0 on a dense probe grid) — this is exactly the
/// incremental-passivity property the network solver relies on.
class MonotonicityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityProperty, DerivativeNonNegativeEverywhere) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 1);
  std::vector<double> xs{0.0}, ys{0.0};
  for (int i = 0; i < 20; ++i) {
    xs.push_back(xs.back() + rng.uniform(0.01, 1.0));
    // Mix of flat and increasing segments.
    ys.push_back(ys.back() + (rng.coin() ? 0.0 : rng.uniform(0.0, 2.0)));
  }
  const MonotoneCurve c(xs, ys);
  double prev = c(xs.front() - 0.5);
  for (double x = xs.front() - 0.5; x <= xs.back() + 0.5; x += 0.013) {
    double g = 0.0;
    const double y = c(x, &g);
    EXPECT_GE(g, -1e-12) << "at x=" << x;
    EXPECT_GE(y, prev - 1e-12) << "at x=" << x;
    prev = y;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMonotone, MonotonicityProperty,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace ppuf
