// Tests for the full-input-vector challenge encoding (the Fig. 9/10
// interpretation) and the feedback successor's statistical quality.
#include <gtest/gtest.h>

#include <set>

#include "metrics/flip.hpp"
#include "ppuf/feedback.hpp"
#include "util/statistics.hpp"

namespace ppuf {
namespace {

TEST(FullInput, DecodeValidatesWidth) {
  const CrossbarLayout layout(8, 4);
  EXPECT_THROW(
      metrics::decode_full_input(layout, std::vector<std::uint8_t>(5, 0)),
      std::invalid_argument);
}

TEST(FullInput, DecodeFieldsAreBigEndianAndModN) {
  const CrossbarLayout layout(8, 4);  // 3 selection bits each, 16 type-B
  std::vector<std::uint8_t> bits(metrics::full_input_bits(layout), 0);
  // source field = 0b101 = 5, sink field = 0b010 = 2.
  bits[0] = 1;
  bits[2] = 1;
  bits[4] = 1;
  bits[6] = 1;  // first type-B bit
  const Challenge c = metrics::decode_full_input(layout, bits);
  EXPECT_EQ(c.source, 5u);
  EXPECT_EQ(c.sink, 2u);
  ASSERT_EQ(c.bits.size(), 16u);
  EXPECT_EQ(c.bits[0], 1);
  EXPECT_EQ(c.bits[1], 0);
}

TEST(FullInput, DegenerateSourceSinkIsResolved) {
  const CrossbarLayout layout(8, 4);
  std::vector<std::uint8_t> bits(metrics::full_input_bits(layout), 0);
  // Both fields zero -> source = sink = 0 -> sink bumped to 1.
  const Challenge c = metrics::decode_full_input(layout, bits);
  EXPECT_EQ(c.source, 0u);
  EXPECT_EQ(c.sink, 1u);
}

TEST(FullInput, ModNWrapsForNonPowerOfTwo) {
  // n = 6 -> 3 selection bits, values 6..7 wrap to 0..1.
  const CrossbarLayout layout(6, 3);
  std::vector<std::uint8_t> bits(metrics::full_input_bits(layout), 0);
  bits[0] = bits[1] = bits[2] = 1;  // source field = 7 -> 7 % 6 = 1
  const Challenge c = metrics::decode_full_input(layout, bits);
  EXPECT_EQ(c.source, 1u);
}

TEST(FullInput, EveryDecodedChallengeIsValid) {
  const CrossbarLayout layout(10, 4);
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> bits(metrics::full_input_bits(layout));
    for (auto& b : bits) b = rng.coin() ? 1 : 0;
    const Challenge c = metrics::decode_full_input(layout, bits);
    EXPECT_LT(c.source, 10u);
    EXPECT_LT(c.sink, 10u);
    EXPECT_NE(c.source, c.sink);
    EXPECT_EQ(c.bits.size(), layout.cell_count());
  }
}

TEST(FeedbackQuality, SuccessorChallengesAreWellSpread) {
  // The chain successor should behave like a fresh uniform challenge:
  // sources cover many values and type-B bits are balanced.
  const CrossbarLayout layout(10, 4);
  util::Rng rng(8);
  Challenge c = random_challenge(layout, rng);
  std::set<unsigned> sources;
  util::RunningStats ones;
  int response = 0;
  for (int i = 0; i < 300; ++i) {
    c = next_challenge(layout, c, response, 42);
    response ^= (i % 3 == 0) ? 1 : 0;
    sources.insert(c.source);
    double count = 0;
    for (const auto b : c.bits) count += b;
    ones.add(count / static_cast<double>(c.bits.size()));
  }
  EXPECT_GE(sources.size(), 8u);  // nearly all of 10 sources visited
  EXPECT_NEAR(ones.mean(), 0.5, 0.03);
}

}  // namespace
}  // namespace ppuf
