// Tests for src/graph: digraph, complete builders, BFS (serial + parallel).
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/complete.hpp"
#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace ppuf::graph {
namespace {

Digraph path_graph(std::size_t n) {
  Digraph g(n);
  for (VertexId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, 1.0);
  g.finalize();
  return g;
}

TEST(Digraph, AddEdgeValidation) {
  Digraph g(3);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_EQ(g.add_edge(0, 1, 1.0), 0u);
  EXPECT_EQ(g.add_edge(1, 2, 2.0), 1u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Digraph, OutEdgesRequireFinalize) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(g.out_edges(0), std::logic_error);
  g.finalize();
  EXPECT_EQ(g.out_edges(0).size(), 1u);
  EXPECT_EQ(g.out_edges(1).size(), 0u);
}

TEST(Digraph, AdjacencyIndexGroupsBySource) {
  Digraph g(4);
  g.add_edge(2, 0, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(2, 1, 1.0);
  g.finalize();
  EXPECT_EQ(g.out_degree(2), 3u);
  EXPECT_EQ(g.out_degree(0), 1u);
  for (EdgeId e : g.out_edges(2)) EXPECT_EQ(g.edge(e).from, 2u);
}

TEST(Digraph, SetCapacityUpdatesWithoutRebuild) {
  Digraph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.finalize();
  g.set_capacity(e, 5.0);
  EXPECT_DOUBLE_EQ(g.edge(e).capacity, 5.0);
  EXPECT_TRUE(g.finalized());
  EXPECT_THROW(g.set_capacity(e, -1.0), std::invalid_argument);
}

TEST(Digraph, OutCapacitySums) {
  Digraph g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(0, 2, 2.5);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.out_capacity(0), 4.0);
}

TEST(Complete, HasAllOrderedPairs) {
  const Digraph g = make_complete(5, [](VertexId, VertexId) { return 1.0; });
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 20u);
  EXPECT_TRUE(g.is_complete());
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.out_degree(v), 4u);
}

TEST(Complete, EdgeIdLayoutMatchesBuilder) {
  const std::size_t n = 6;
  const Digraph g = make_complete(n, [n](VertexId i, VertexId j) {
    return static_cast<double>(i * n + j);
  });
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i == j) continue;
      const Edge& e = g.edge(complete_edge_id(n, i, j));
      EXPECT_EQ(e.from, i);
      EXPECT_EQ(e.to, j);
      EXPECT_DOUBLE_EQ(e.capacity, static_cast<double>(i * n + j));
    }
  }
}

TEST(Complete, EdgeIdRejectsDiagonal) {
  EXPECT_THROW(complete_edge_id(4, 2, 2), std::invalid_argument);
}

TEST(Complete, UniformCapacitiesInRange) {
  util::Rng rng(3);
  const Digraph g = make_complete_uniform(8, rng, 0.25, 0.75);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.capacity, 0.25);
    EXPECT_LT(e.capacity, 0.75);
  }
}

TEST(Complete, SmallNRejected) {
  util::Rng rng(3);
  EXPECT_THROW(make_complete_uniform(1, rng), std::invalid_argument);
}

TEST(RandomGraph, DensityMatchesProbability) {
  util::Rng rng(4);
  const Digraph g = make_random(40, 0.3, rng);
  const double density = static_cast<double>(g.edge_count()) / (40.0 * 39.0);
  EXPECT_NEAR(density, 0.3, 0.05);
}

TEST(RandomGraph, IsFinalizedAndDiagonalFree) {
  util::Rng rng(4);
  const Digraph g = make_random(10, 0.5, rng);
  EXPECT_TRUE(g.finalized());
  for (const Edge& e : g.edges()) EXPECT_NE(e.from, e.to);
}

NeighborFn digraph_neighbors(const Digraph& g) {
  return [&g](VertexId v, std::vector<VertexId>& out) {
    for (EdgeId e : g.out_edges(v)) out.push_back(g.edge(e).to);
  };
}

TEST(Bfs, DistancesOnPath) {
  const Digraph g = path_graph(5);
  const auto dist = bfs_distances(5, 0, digraph_neighbors(g));
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableMarked) {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const auto dist = bfs_distances(4, 0, digraph_neighbors(g));
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, ReachableSelfAndDirected) {
  const Digraph g = path_graph(3);
  EXPECT_TRUE(reachable(3, 1, 1, digraph_neighbors(g)));
  EXPECT_TRUE(reachable(3, 0, 2, digraph_neighbors(g)));
  EXPECT_FALSE(reachable(3, 2, 0, digraph_neighbors(g)));
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const Digraph g = path_graph(3);
  EXPECT_THROW(bfs_distances(3, 9, digraph_neighbors(g)), std::out_of_range);
}

/// Property: parallel BFS produces identical distances to serial BFS on
/// random graphs, for 2 and 4 threads.
class ParallelBfsProperty
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(ParallelBfsProperty, MatchesSerial) {
  const auto [seed, threads] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 60;
  const Digraph g = make_random(n, 0.08, rng);
  const auto nf = digraph_neighbors(g);
  const auto serial = bfs_distances(n, 0, nf);
  const auto parallel = bfs_distances_parallel(n, 0, nf, threads);
  EXPECT_EQ(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ParallelBfsProperty,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(2u, 4u)));

TEST(ParallelBfs, SingleThreadFallsBackToSerial) {
  const Digraph g = path_graph(4);
  const auto a = bfs_distances_parallel(4, 0, digraph_neighbors(g), 1);
  const auto b = bfs_distances(4, 0, digraph_neighbors(g));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ppuf::graph
