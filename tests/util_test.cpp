// Tests for src/util: statistics, bigint, fitting, tables, rng, deadlines.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "util/bigint.hpp"
#include "util/fit.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace ppuf::util {
namespace {

// ---------------------------------------------------------------- statistics

TEST(Statistics, MeanOfKnownSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Statistics, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Statistics, StddevOfKnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population sigma of this classic sample is 2; unbiased is larger.
  EXPECT_NEAR(stddev_population(xs), 2.0, 1e-12);
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-4);
}

TEST(Statistics, StddevOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{42.0}), 0.0);
}

TEST(Statistics, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Statistics, MinMaxThrowOnEmpty) {
  EXPECT_THROW(min_value(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(max_value(std::vector<double>{}), std::invalid_argument);
}

TEST(Statistics, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Statistics, PercentileEndpointsAndMiddle) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
}

TEST(Statistics, PercentileRejectsBadP) {
  EXPECT_THROW(percentile(std::vector<double>{1.0}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, 101.0),
               std::invalid_argument);
}

TEST(Statistics, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Statistics, PearsonConstantSampleIsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{2.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  Rng rng(7);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-10);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
  EXPECT_EQ(rs.count(), xs.size());
}

// ------------------------------------------------------------------- bigint

TEST(BigUint, SmallArithmetic) {
  EXPECT_EQ((BigUint(2) + BigUint(3)).to_decimal(), "5");
  EXPECT_EQ((BigUint(1000) - BigUint(1)).to_decimal(), "999");
  EXPECT_EQ((BigUint(123) * BigUint(456)).to_decimal(), "56088");
  EXPECT_EQ((BigUint(56088) / BigUint(456)).to_decimal(), "123");
}

TEST(BigUint, CarryAcrossLimbs) {
  const BigUint max32(0xffffffffULL);
  EXPECT_EQ((max32 + BigUint(1)).to_decimal(), "4294967296");
  const BigUint max64(0xffffffffffffffffULL);
  EXPECT_EQ((max64 + BigUint(1)).to_decimal(), "18446744073709551616");
}

TEST(BigUint, Pow2) {
  EXPECT_EQ(BigUint::pow2(0).to_decimal(), "1");
  EXPECT_EQ(BigUint::pow2(10).to_decimal(), "1024");
  EXPECT_EQ(BigUint::pow2(64).to_decimal(), "18446744073709551616");
  EXPECT_EQ(BigUint::pow2(128).to_decimal(),
            "340282366920938463463374607431768211456");
}

TEST(BigUint, BinomialKnownValues) {
  EXPECT_EQ(BigUint::binomial(5, 2).to_decimal(), "10");
  EXPECT_EQ(BigUint::binomial(10, 5).to_decimal(), "252");
  EXPECT_EQ(BigUint::binomial(52, 5).to_decimal(), "2598960");
  EXPECT_EQ(BigUint::binomial(100, 50).to_decimal(),
            "100891344545564193334812497256");
  EXPECT_TRUE(BigUint::binomial(5, 9).is_zero());
}

TEST(BigUint, DecimalRoundTrip) {
  const std::string s = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigUint::from_decimal(s).to_decimal(), s);
}

TEST(BigUint, FromDecimalRejectsGarbage) {
  EXPECT_THROW(BigUint::from_decimal(""), std::invalid_argument);
  EXPECT_THROW(BigUint::from_decimal("12a3"), std::invalid_argument);
}

TEST(BigUint, SubtractUnderflowThrows) {
  EXPECT_THROW(BigUint(1) - BigUint(2), std::domain_error);
}

TEST(BigUint, DivideByZeroThrows) {
  EXPECT_THROW(BigUint(1) / BigUint(0), std::domain_error);
}

TEST(BigUint, Comparisons) {
  EXPECT_LT(BigUint(3), BigUint(4));
  EXPECT_LT(BigUint(0xffffffffULL), BigUint::pow2(32));
  EXPECT_EQ(BigUint(7), BigUint(7));
  EXPECT_GE(BigUint::pow2(100), BigUint::pow2(99));
}

TEST(BigUint, ToDouble) {
  EXPECT_DOUBLE_EQ(BigUint(1000000).to_double(), 1e6);
  EXPECT_NEAR(BigUint::pow2(100).to_double(), std::pow(2.0, 100.0), 1e18);
}

TEST(BigUint, BitLength) {
  EXPECT_EQ(BigUint(0).bit_length(), 0u);
  EXPECT_EQ(BigUint(1).bit_length(), 1u);
  EXPECT_EQ(BigUint(255).bit_length(), 8u);
  EXPECT_EQ(BigUint::pow2(200).bit_length(), 201u);
}

/// Property: (a*b)/b == a and (a+b)-b == a for random multi-limb values.
class BigUintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigUintRoundTrip, MulDivAddSubInverse) {
  Rng rng(GetParam());
  BigUint a(1);
  BigUint b(1);
  for (int i = 0; i < 4; ++i) {
    a *= BigUint(static_cast<std::uint64_t>(rng.uniform_int(1, 1e15)));
    b *= BigUint(static_cast<std::uint64_t>(rng.uniform_int(1, 1e15)));
  }
  EXPECT_EQ((a * b) / b, a);
  EXPECT_EQ((a + b) - b, a);
  // Division identity: a = (a/b)*b + (a - (a/b)*b), remainder < b.
  const BigUint q = a / b;
  const BigUint r = a - q * b;
  EXPECT_LT(r, b);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BigUintRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------- fit

TEST(Fit, PolyfitRecoversExactPolynomial) {
  // y = 2 - 3x + 0.5x^2
  std::vector<double> xs, ys;
  for (double x = 0.0; x < 8.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(2.0 - 3.0 * x + 0.5 * x * x);
  }
  const Polynomial p = polyfit(xs, ys, 2);
  ASSERT_EQ(p.coeffs.size(), 3u);
  EXPECT_NEAR(p.coeffs[0], 2.0, 1e-9);
  EXPECT_NEAR(p.coeffs[1], -3.0, 1e-9);
  EXPECT_NEAR(p.coeffs[2], 0.5, 1e-9);
  EXPECT_NEAR(p(10.0), 2.0 - 30.0 + 50.0, 1e-6);
}

TEST(Fit, PolyfitNeedsEnoughPoints) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(polyfit(xs, ys, 2), std::invalid_argument);
}

TEST(Fit, PowerLawRecovery) {
  std::vector<double> xs, ys;
  for (double x = 1.0; x <= 64.0; x *= 2.0) {
    xs.push_back(x);
    ys.push_back(3.5 * std::pow(x, 2.25));
  }
  const PowerLaw pl = fit_power_law(xs, ys);
  EXPECT_NEAR(pl.a, 3.5, 1e-9);
  EXPECT_NEAR(pl.b, 2.25, 1e-12);
}

TEST(Fit, PowerLawRejectsNonPositive) {
  const std::vector<double> xs{1.0, -2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(fit_power_law(xs, ys), std::invalid_argument);
}

TEST(Fit, LineRecovery) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const Line l = fit_line(xs, ys);
  EXPECT_NEAR(l.intercept, 1.0, 1e-12);
  EXPECT_NEAR(l.slope, 2.0, 1e-12);
}

TEST(Fit, RSquaredPerfectAndPoor) {
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(ys, ys), 1.0);
  const std::vector<double> flat{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(ys, flat), 0.0);
}

TEST(Fit, SolveMonotoneFindsRoot) {
  auto f = [](double x, const void*) { return x * x * x; };
  const double r = solve_monotone(f, nullptr, 27.0, 0.0, 10.0);
  EXPECT_NEAR(r, 3.0, 1e-6);
}

TEST(Fit, SolveMonotoneUnbracketedIsNaN) {
  auto f = [](double x, const void*) { return x; };
  EXPECT_TRUE(std::isnan(solve_monotone(f, nullptr, 100.0, 0.0, 1.0)));
}

// -------------------------------------------------------------------- table

TEST(Table, AlignsAndPrintsAllRows) {
  Table t({"n", "value"});
  t.add_row({"10", "1.5"});
  t.add_row({"100", "2.25"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("n"), std::string::npos);
  EXPECT_NE(s.find("2.25"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::sci(12345.6789, 2), "1.23e+04");
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForkDecouplesStreams) {
  Rng a(99);
  Rng child = a.fork();
  // The child stream should not reproduce the parent's next outputs.
  Rng b(99);
  (void)b.fork();
  EXPECT_NE(child(), b());  // child differs from parent continuation
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.gaussian(1.0, 2.0));
  EXPECT_NEAR(rs.mean(), 1.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(Rng, BenchScaleDefaultsToOne) {
  // The variable is unset in the test environment.
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
}

// ------------------------------------------------------------------ deadline
//
// Deadline::remaining() is what the service layer puts on the wire as a
// per-request budget, so its edge cases (unlimited, already expired) are
// protocol semantics, not just convenience.

TEST(Deadline, UnlimitedRemainingIsDurationMax) {
  const Deadline d;
  EXPECT_TRUE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::max());
  EXPECT_EQ(Deadline::unlimited().remaining(),
            Deadline::Clock::duration::max());
}

TEST(Deadline, RemainingIsPositiveAndBoundedBeforeExpiry) {
  const Deadline d = Deadline::after_seconds(60.0);
  const auto left = d.remaining();
  EXPECT_GT(left, Deadline::Clock::duration::zero());
  EXPECT_LE(left, std::chrono::seconds(60));
}

TEST(Deadline, RemainingClampsToZeroOnceExpired) {
  const Deadline immediate = Deadline::after_seconds(0.0);
  EXPECT_TRUE(immediate.expired());
  EXPECT_EQ(immediate.remaining(), Deadline::Clock::duration::zero());
  // Far in the past: still exactly zero, never negative.
  const Deadline past =
      Deadline::at(Deadline::Clock::now() - std::chrono::seconds(5));
  EXPECT_EQ(past.remaining(), Deadline::Clock::duration::zero());
}

TEST(Deadline, RemainingShrinksAsTimePasses) {
  const Deadline d = Deadline::after_seconds(60.0);
  const auto first = d.remaining();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_LT(d.remaining(), first);
}

}  // namespace
}  // namespace ppuf::util
