// Property tests for the concurrent evaluation engine: worker count, cache
// state and injected transient faults must never change WHAT a batch
// computes — only how fast.  Every assertion here is bitwise (exact double
// equality), because "close enough" across thread counts is exactly the
// kind of symptom a data race produces.  The suite is sized to stay fast
// under ASan/UBSan/TSan, where it earns its keep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "maxflow/batch.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/response_cache.hpp"
#include "ppuf/sim_model.hpp"
#include "testing/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ppuf {
namespace {

/// One shared instance/model for the whole suite: fabrication dominates
/// the runtime and the tests only read the published model.
class BatchConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PpufParams params;
    params.node_count = 8;
    params.grid_size = 4;
    puf_ = new MaxFlowPpuf(params, 424242);
    model_ = new SimulationModel(*puf_);
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete puf_;
    puf_ = nullptr;
  }

  /// `count` challenges where the second half repeats the first half, so
  /// cache hits occur *within* one batch, including concurrently.
  static std::vector<Challenge> challenges_with_repeats(std::size_t count,
                                                        std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<Challenge> cs;
    cs.reserve(count);
    for (std::size_t i = 0; i < (count + 1) / 2; ++i)
      cs.push_back(random_challenge(model_->layout(), rng));
    while (cs.size() < count) cs.push_back(cs[cs.size() - (count + 1) / 2]);
    return cs;
  }

  static void expect_bitwise_equal(
      const std::vector<SimulationModel::Prediction>& a,
      const std::vector<SimulationModel::Prediction>& b,
      const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].bit, b[i].bit) << label << " item " << i;
      // Bitwise: exact double equality, no tolerance.
      EXPECT_EQ(a[i].flow_a, b[i].flow_a) << label << " item " << i;
      EXPECT_EQ(a[i].flow_b, b[i].flow_b) << label << " item " << i;
      EXPECT_EQ(a[i].status.code(), b[i].status.code())
          << label << " item " << i;
    }
  }

  static MaxFlowPpuf* puf_;
  static SimulationModel* model_;
};

MaxFlowPpuf* BatchConcurrencyTest::puf_ = nullptr;
SimulationModel* BatchConcurrencyTest::model_ = nullptr;

TEST_F(BatchConcurrencyTest, PredictBatchIdenticalAcrossThreadCounts) {
  const std::vector<Challenge> batch = challenges_with_repeats(32, 7);

  SimulationModel::PredictBatchOptions serial;
  serial.thread_count = 1;
  const auto baseline = model_->predict_batch(batch, serial);
  for (const auto& p : baseline) ASSERT_TRUE(p.ok());

  for (const unsigned threads : {2u, 4u}) {
    util::ThreadPool pool(threads);
    SimulationModel::PredictBatchOptions parallel;
    parallel.pool = &pool;
    expect_bitwise_equal(baseline, model_->predict_batch(batch, parallel),
                         std::to_string(threads) + " threads");
  }
}

TEST_F(BatchConcurrencyTest, PredictBatchIdenticalWithAndWithoutCache) {
  const std::vector<Challenge> batch = challenges_with_repeats(32, 11);

  SimulationModel::PredictBatchOptions serial;
  const auto baseline = model_->predict_batch(batch, serial);

  // Cold cache, serial: second half of the batch hits the first half's
  // freshly inserted entries.
  {
    ResponseCache cache(8 * 1024 * 1024);
    SimulationModel::PredictBatchOptions cached;
    cached.cache = &cache;
    expect_bitwise_equal(baseline, model_->predict_batch(batch, cached),
                         "serial cached");
    EXPECT_GT(cache.stats().hits, 0u);
  }
  // Cold cache, 4 workers: concurrent lookups and inserts on the same
  // keys must still produce the baseline answers.
  {
    ResponseCache cache(8 * 1024 * 1024);
    util::ThreadPool pool(4);
    SimulationModel::PredictBatchOptions cached;
    cached.cache = &cache;
    cached.pool = &pool;
    expect_bitwise_equal(baseline, model_->predict_batch(batch, cached),
                         "parallel cached, cold");
    // Warm cache, 4 workers: now everything hits.
    const auto warm_before = cache.stats();
    expect_bitwise_equal(baseline, model_->predict_batch(batch, cached),
                         "parallel cached, warm");
    EXPECT_EQ(cache.stats().hits - warm_before.hits, batch.size());
    EXPECT_EQ(cache.stats().misses, warm_before.misses);
  }
}

TEST_F(BatchConcurrencyTest, SolveBatchIdenticalUnderTransientFaults) {
  // Build independent flow problems from the model's graphs.
  const std::vector<Challenge> cs = challenges_with_repeats(24, 13);
  std::vector<graph::Digraph> graphs;
  graphs.reserve(cs.size());
  for (const auto& c : cs) graphs.push_back(model_->build_graph(0, c));
  std::vector<graph::FlowProblem> problems;
  problems.reserve(cs.size());
  for (std::size_t i = 0; i < cs.size(); ++i)
    problems.push_back({&graphs[i], cs[i].source, cs[i].sink});

  // Two injected transient failures against three attempts per item: even
  // if one unlucky item absorbs both faults it still completes, so the
  // OUTCOME is deterministic although WHICH worker absorbs a fault is not.
  auto run = [&](unsigned threads) {
    testing::FaultSpec spec;
    spec.maxflow_transient_failures = 2;
    const testing::ScopedFaultInjection fault(spec);
    maxflow::BatchOptions options;
    options.thread_count = threads;
    options.max_attempts = 3;
    return maxflow::solve_batch(problems, maxflow::Algorithm::kPushRelabel,
                                options);
  };

  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].ok()) << "item " << i;
    EXPECT_TRUE(parallel[i].ok()) << "item " << i;
    EXPECT_EQ(serial[i].value, parallel[i].value) << "item " << i;
    ASSERT_EQ(serial[i].edge_flow.size(), parallel[i].edge_flow.size());
    for (std::size_t e = 0; e < serial[i].edge_flow.size(); ++e) {
      EXPECT_EQ(serial[i].edge_flow[e], parallel[i].edge_flow[e])
          << "item " << i << " edge " << e;
    }
  }
}

TEST_F(BatchConcurrencyTest, FaultsExceedingRetriesFailItemsNotBatch) {
  // More injected faults than one item's retry budget: some items land in
  // kInternal, the rest complete, and no worker count turns a per-item
  // failure into a batch failure.
  const std::vector<Challenge> cs = challenges_with_repeats(8, 17);
  std::vector<graph::Digraph> graphs;
  for (const auto& c : cs) graphs.push_back(model_->build_graph(0, c));
  std::vector<graph::FlowProblem> problems;
  for (std::size_t i = 0; i < cs.size(); ++i)
    problems.push_back({&graphs[i], cs[i].source, cs[i].sink});

  for (const unsigned threads : {1u, 4u}) {
    testing::FaultSpec spec;
    spec.maxflow_transient_failures = 2;
    const testing::ScopedFaultInjection fault(spec);
    maxflow::BatchOptions options;
    options.thread_count = threads;
    options.max_attempts = 1;  // no retries: two items must fail
    const auto results = maxflow::solve_batch(
        problems, maxflow::Algorithm::kPushRelabel, options);
    std::size_t failed = 0;
    for (const auto& r : results) {
      if (!r.ok()) {
        EXPECT_EQ(r.status.code(), util::StatusCode::kInternal);
        ++failed;
      }
    }
    EXPECT_EQ(failed, 2u) << threads << " threads";
  }
}

TEST_F(BatchConcurrencyTest, ExpiredControlMarksEveryItemIdentically) {
  const std::vector<Challenge> batch = challenges_with_repeats(16, 19);

  for (const unsigned threads : {1u, 4u}) {
    SimulationModel::PredictBatchOptions options;
    options.thread_count = threads;
    options.control.deadline = util::Deadline::after_seconds(0.0);
    const auto results = model_->predict_batch(batch, options);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].status.code(),
                util::StatusCode::kDeadlineExceeded)
          << threads << " threads, item " << i;
    }
  }

  util::CancelToken cancel;
  cancel.request_cancel();
  for (const unsigned threads : {1u, 4u}) {
    SimulationModel::PredictBatchOptions options;
    options.thread_count = threads;
    options.control.cancel = &cancel;
    const auto results = model_->predict_batch(batch, options);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].status.code(), util::StatusCode::kCancelled)
          << threads << " threads, item " << i;
    }
  }
}

// Per-item deadlines: one expired item must be answered typed without
// being attempted, and must not poison its batch-mates — the invariant a
// coalescing server relies on when it folds requests with different
// budgets into one batch.
TEST_F(BatchConcurrencyTest, PerItemDeadlineExpiresOneItemNotItsMates) {
  const std::vector<Challenge> batch = challenges_with_repeats(6, 23);

  SimulationModel::PredictBatchOptions plain;
  plain.thread_count = 1;
  const auto want = model_->predict_batch(batch, plain);

  for (const unsigned threads : {1u, 4u}) {
    SimulationModel::PredictBatchOptions options;
    options.thread_count = threads;
    options.deadlines.assign(batch.size(), util::Deadline());
    options.deadlines[2] = util::Deadline::after_seconds(0.0);  // expired
    const auto results = model_->predict_batch(batch, options);
    ASSERT_EQ(results.size(), batch.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i == 2) {
        EXPECT_EQ(results[i].status.code(),
                  util::StatusCode::kDeadlineExceeded)
            << threads << " threads";
        continue;
      }
      ASSERT_TRUE(results[i].ok()) << threads << " threads, item " << i;
      EXPECT_EQ(results[i].bit, want[i].bit);
      EXPECT_EQ(results[i].flow_a, want[i].flow_a);
      EXPECT_EQ(results[i].flow_b, want[i].flow_b);
    }
  }

  // A deadlines vector of the wrong length is a caller bug, not a data
  // error: it must throw, not silently misalign budgets with items.
  SimulationModel::PredictBatchOptions mismatched;
  mismatched.deadlines.assign(batch.size() + 1, util::Deadline());
  EXPECT_THROW(model_->predict_batch(batch, mismatched),
               std::invalid_argument);
}

// Regression: the control-aware parallel_for used to re-poll the control
// AFTER all items had completed, so a deadline expiring in the gap between
// the last item finishing and the return mislabelled a fully-completed
// batch as kDeadlineExceeded.  The call must report only what the
// dispatched items observed: every item ran with an ok status -> Ok.
TEST_F(BatchConcurrencyTest, DeadlineExpiryAfterCompletionStillReportsOk) {
  util::ThreadPool pool(2);
  // Generous enough that the single item always starts in time, even on a
  // loaded CI host.
  util::SolveControl control;
  control.deadline = util::Deadline::after_seconds(0.05);

  std::atomic<int> ok_items{0};
  const util::Status status = pool.parallel_for(
      1,
      [&](std::size_t, const util::Status& stop) {
        if (stop.is_ok()) {
          ++ok_items;
          // Outlive the deadline: by the time this item returns, the
          // control has expired — but the item itself was never stopped.
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      },
      control);

  ASSERT_EQ(ok_items.load(), 1);
  EXPECT_TRUE(control.deadline.expired());
  EXPECT_TRUE(status.is_ok()) << status.to_string();

  // Control case: a deadline that fires before dispatch still surfaces,
  // both per item and in the aggregate status.
  util::SolveControl expired;
  expired.deadline = util::Deadline::after_seconds(0.0);
  std::atomic<int> stopped_items{0};
  const util::Status late = pool.parallel_for(
      1,
      [&](std::size_t, const util::Status& stop) {
        if (!stop.is_ok()) ++stopped_items;
      },
      expired);
  EXPECT_EQ(stopped_items.load(), 1);
  EXPECT_EQ(late.code(), util::StatusCode::kDeadlineExceeded);
}

TEST_F(BatchConcurrencyTest, SharedPoolServesConcurrentBatchFronts) {
  // One long-lived pool, used by predict_batch and verify-style
  // solve_batch calls in sequence — the service topology.  (Also a
  // lifetime test: the pool must drain cleanly between calls.)
  util::ThreadPool pool(4);
  const std::vector<Challenge> batch = challenges_with_repeats(16, 23);

  SimulationModel::PredictBatchOptions serial;
  const auto baseline = model_->predict_batch(batch, serial);

  SimulationModel::PredictBatchOptions pooled;
  pooled.pool = &pool;
  for (int round = 0; round < 3; ++round) {
    expect_bitwise_equal(baseline, model_->predict_batch(batch, pooled),
                         "round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace ppuf
