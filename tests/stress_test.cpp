// Randomised stress suites: sweep the whole stack over random parameter
// combinations at small scale and check the paper's invariants hold for
// every draw — the closest thing to a fuzzer this deterministic library
// needs.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dc.hpp"
#include "maxflow/solver.hpp"
#include "maxflow/verify.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "util/rng.hpp"

namespace ppuf {
namespace {

/// Random PPUF configurations: the execution/simulation equivalence and
/// the verifier acceptance must hold for every geometry and seed.
class PpufStress : public ::testing::TestWithParam<int> {};

TEST_P(PpufStress, EquivalenceHoldsForRandomConfigurations) {
  util::Rng meta(static_cast<std::uint64_t>(GetParam()) * 101 + 7);
  PpufParams p;
  p.node_count = static_cast<std::size_t>(meta.uniform_int(6, 14));
  p.grid_size = static_cast<std::size_t>(
      meta.uniform_int(2, static_cast<std::int64_t>(p.node_count / 2)));
  const auto seed = static_cast<std::uint64_t>(meta.uniform_int(1, 1 << 20));

  MaxFlowPpuf puf(p, seed);
  SimulationModel model(puf);
  util::Rng rng(seed ^ 0xabcd);
  for (int c = 0; c < 3; ++c) {
    const Challenge ch = random_challenge(puf.layout(), rng);
    const auto exe = puf.evaluate(ch);
    ASSERT_TRUE(exe.converged) << "n=" << p.node_count << " l="
                               << p.grid_size << " seed=" << seed;
    const auto sim = model.predict(ch);
    const double err =
        std::abs(exe.current_a - sim.flow_a) / exe.current_a;
    EXPECT_LT(err, 0.04) << "n=" << p.node_count << " seed=" << seed;

    // The physical edge currents must verify as a (near-)maximum flow of
    // the published instance — the protocol's acceptance invariant.
    const auto flows =
        puf.network_a().execute_edge_currents(ch, circuit::Environment::nominal());
    const graph::Digraph g = model.build_graph(0, ch);
    double mean_cap = 0.0;
    for (const auto& e : g.edges()) mean_cap += e.capacity;
    mean_cap /= static_cast<double>(g.edge_count());
    // Tolerance: ~10% of the mean capacity.  The analog flow is usually
    // within 1-3%, but a min-cut edge short on voltage headroom can sit
    // ~8% under its capacity on unlucky small instances — verifiers must
    // budget for that (see protocol/authentication.hpp).
    const auto v = maxflow::verify_flow(g, ch.source, ch.sink, flows,
                                        0.10 * mean_cap);
    EXPECT_TRUE(v.optimal) << v.reason << " (n=" << p.node_count
                           << " seed=" << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PpufStress, ::testing::Range(0, 6));

/// Random R-diode ladder networks: the DC solver must converge and satisfy
/// KCL for arbitrary topologies of the device classes the PPUF uses.
class CircuitStress : public ::testing::TestWithParam<int> {};

TEST_P(CircuitStress, RandomLaddersConvergeAndConserve) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 3);
  circuit::Netlist nl;
  const int rungs = static_cast<int>(rng.uniform_int(3, 8));
  std::vector<circuit::NodeId> nodes{nl.add_node()};
  const std::size_t supply =
      nl.add_voltage_source(nodes[0], circuit::kGround, rng.uniform(1.0, 3.0));
  for (int i = 0; i < rungs; ++i) {
    const circuit::NodeId next = nl.add_node();
    switch (rng.uniform_int(0, 2)) {
      case 0:
        nl.add_resistor(nodes.back(), next, rng.uniform(1e3, 1e6));
        break;
      case 1:
        nl.add_diode(nodes.back(), next, circuit::DiodeParams{});
        break;
      default: {
        circuit::MosfetParams m;
        m.vth = rng.uniform(0.3, 0.5);
        const circuit::NodeId gate = nl.add_node();
        nl.add_voltage_source(gate, circuit::kGround, rng.uniform(0.8, 2.0));
        nl.add_mosfet(nodes.back(), gate, next, m);
        break;
      }
    }
    // Shunt to ground keeps every rung observable.
    nl.add_resistor(next, circuit::kGround, rng.uniform(1e5, 1e7));
    nodes.push_back(next);
  }

  const circuit::OperatingPoint op = circuit::DcSolver(nl).solve();
  ASSERT_TRUE(op.converged) << "seed " << GetParam();
  EXPECT_LT(op.residual, 1e-10);
  // The supply current equals the current leaving through the ladder
  // (sanity via sign: the source drives a passive network).
  EXPECT_GE(op.source_current(supply), -1e-12);
  for (const double v : op.node_voltage) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -0.5);
    EXPECT_LE(v, 3.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CircuitStress, ::testing::Range(0, 10));

/// Random flow instances: feasibility of every solver's output flow is an
/// invariant regardless of graph shape (including graphs with no s-t path
/// and parallel edges).
class FlowStress : public ::testing::TestWithParam<int> {};

TEST_P(FlowStress, AllSolversProduceVerifiableFlows) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 1);
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(4, 24));
  graph::Digraph g(n);
  const int extra = static_cast<int>(rng.uniform_int(0, 3 * n));
  for (int e = 0; e < extra; ++e) {
    const auto a = static_cast<graph::VertexId>(rng.uniform_int(0, n - 1));
    auto b = static_cast<graph::VertexId>(rng.uniform_int(0, n - 2));
    if (b >= a) ++b;
    g.add_edge(a, b, rng.uniform(0.0, 2.0));  // zero capacities allowed
  }
  if (g.edge_count() == 0) g.add_edge(0, 1, 1.0);
  g.finalize();
  const auto t = static_cast<graph::VertexId>(n - 1);

  double reference = -1.0;
  for (const auto algo : maxflow::all_algorithms()) {
    const auto r = maxflow::make_solver(algo)->solve({&g, 0, t});
    const auto v = maxflow::verify_flow(g, 0, t, r.edge_flow, 1e-9);
    EXPECT_TRUE(v.optimal)
        << maxflow::algorithm_name(algo) << ": " << v.reason;
    if (reference < 0.0) {
      reference = r.value;
    } else {
      EXPECT_NEAR(r.value, reference, 1e-9 * std::max(1.0, reference));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, FlowStress, ::testing::Range(0, 12));

}  // namespace
}  // namespace ppuf
