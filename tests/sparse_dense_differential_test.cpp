// Sparse-vs-dense differential layer for the MNA linear core.
//
// The Newton loop inside the DC solver assembles into a slot-replayed
// sparse matrix and factors with the Gilbert-Peierls LU by default; the
// original dense LU is kept behind DcOptions::use_dense_solver as the
// oracle.  This suite pins the two paths against each other at every
// level that matters:
//
//   * raw netlists      - node voltages and source currents agree within
//                         solver tolerance on seeded random circuits;
//   * whole devices     - response BITS are identical when an entire
//                         MaxFlowPpuf is characterised through either path;
//   * warm starts       - opt-in warm-started evaluation (chained auth)
//                         returns the same bits as cold evaluation, and
//                         prove_chain_with_ppuf matches a cold per-round
//                         replay exactly;
//   * concurrency       - many threads characterising same-topology
//                         netlists through ONE shared SymbolicCache agree
//                         with the dense oracle (the TSan target);
//   * degenerate input  - a structurally singular netlist yields a typed
//                         non-converged OperatingPoint from both paths,
//                         never a throw (the Status-ladder regression).
//
// Any divergence — a wrong slot in the replay map, a bad pivot in the
// sparse LU, a stale symbolic analysis, a torn cache entry — fails here on
// a reproducible seed long before it could silently shift a response bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "circuit/dc.hpp"
#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "ppuf/feedback.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/response_cache.hpp"
#include "protocol/authentication.hpp"
#include "registry/device_registry.hpp"
#include "registry/hydration_cache.hpp"
#include "util/rng.hpp"

namespace ppuf {
namespace {

/// Flip the process-wide solver default for one scope (exception-safe):
/// code that builds its own DcOptions internally — block characterisation
/// in particular — follows this flag.
class DenseOracleScope {
 public:
  DenseOracleScope() { circuit::set_default_dense_solver(true); }
  ~DenseOracleScope() { circuit::set_default_dense_solver(false); }
};

/// Seeded random netlist mixing every stampable device kind.  A resistor
/// spine keeps the circuit connected; diodes, a MOSFET, and a current
/// source make the Jacobian genuinely nonlinear and asymmetric.
circuit::Netlist random_netlist(util::Rng& rng, std::size_t node_count) {
  circuit::Netlist nl;
  std::vector<circuit::NodeId> nodes;
  nodes.push_back(circuit::kGround);
  for (std::size_t i = 0; i < node_count; ++i)
    nodes.push_back(nl.add_node());

  nl.add_voltage_source(nodes[1], circuit::kGround, rng.uniform(1.0, 2.5));
  for (std::size_t i = 2; i < nodes.size(); ++i)
    nl.add_resistor(nodes[i], nodes[i - 1], rng.uniform(1e3, 1e4));
  // Random chords (moderate conductances keep the Jacobian well
  // conditioned, so "solver tolerance" is a meaningful agreement bound).
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (rng.uniform() < 0.25)
        nl.add_resistor(nodes[i], nodes[j], rng.uniform(1e3, 1e4));
    }
  }
  if (node_count >= 3) {
    circuit::DiodeParams dp;
    dp.saturation_current = rng.uniform(0.5e-11, 2e-11);
    nl.add_diode(nodes[2], circuit::kGround, dp);
    nl.add_diode(nodes[node_count], nodes[1], dp);
  }
  if (node_count >= 4) {
    circuit::MosfetParams mp;
    mp.vth = rng.uniform(0.35, 0.45);
    nl.add_mosfet(nodes[3], nodes[2], circuit::kGround, mp);
  }
  nl.add_current_source(nodes[1], nodes[nodes.size() - 1],
                        rng.uniform(1e-6, 1e-5));
  return nl;
}

/// Solve one netlist through both linear cores and diff everything the
/// caller of a DC solve can observe.  Returns false (and records gtest
/// failures unless `quiet`) on any divergence.
bool diff_one_netlist(const circuit::Netlist& nl, const std::string& label,
                      std::shared_ptr<circuit::SymbolicCache> cache = nullptr,
                      bool quiet = false) {
  circuit::DcOptions dense_opts;
  dense_opts.use_dense_solver = true;
  circuit::DcOptions sparse_opts;
  sparse_opts.use_dense_solver = false;
  sparse_opts.symbolic_cache = std::move(cache);

  const circuit::OperatingPoint d = circuit::DcSolver(nl, dense_opts).solve();
  const circuit::OperatingPoint s = circuit::DcSolver(nl, sparse_opts).solve();

  bool ok = d.converged && s.converged;
  if (!quiet) {
    EXPECT_TRUE(d.converged) << label << ": dense did not converge";
    EXPECT_TRUE(s.converged) << label << ": sparse did not converge";
  }
  if (!ok) return false;

  // Both points satisfy |dV| < 1e-8 and |KCL| < 1e-11 A against the SAME
  // equations; with ~mS conductances that bounds their separation well
  // under a microvolt.
  constexpr double kVoltTol = 1e-6;
  for (std::size_t n = 0; n < nl.node_count(); ++n) {
    const double dv = std::abs(d.node_voltage.at(n) - s.node_voltage.at(n));
    if (dv > kVoltTol) ok = false;
    if (!quiet) {
      EXPECT_LE(dv, kVoltTol)
          << label << ": node " << n << " dense=" << d.node_voltage.at(n)
          << " sparse=" << s.node_voltage.at(n);
    }
  }
  for (std::size_t h = 0; h < nl.voltage_source_count(); ++h) {
    const double di =
        std::abs(d.vsource_current.at(h) - s.vsource_current.at(h));
    const double tol = 1e-9 + 1e-6 * std::abs(d.vsource_current.at(h));
    if (di > tol) ok = false;
    if (!quiet) {
      EXPECT_LE(di, tol) << label << ": vsource " << h;
    }
  }
  return ok;
}

TEST(SparseDenseDifferential, RandomNetlistsAgreeOnEveryObservable) {
  for (const std::size_t n : {2u, 4u, 7u, 12u, 20u}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      util::Rng rng(seed * 1000 + n);
      const circuit::Netlist nl = random_netlist(rng, n);
      diff_one_netlist(nl, "n=" + std::to_string(n) +
                               " seed=" + std::to_string(seed));
    }
  }
}

TEST(SparseDenseDifferential, SharedCacheNetlistsMatchUncachedSparse) {
  // The same netlists again, but with every sparse solve routed through a
  // single SymbolicCache: cache hits must be bit-for-bit equivalent to a
  // private analysis.  Topologies differ per instance, so the cache ends
  // up holding one structure per distinct topology key.
  auto cache = std::make_shared<circuit::SymbolicCache>();
  std::size_t solved = 0;
  for (const std::size_t n : {4u, 7u, 12u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      util::Rng rng(seed * 1000 + n);
      const circuit::Netlist nl = random_netlist(rng, n);
      diff_one_netlist(nl,
                       "cached n=" + std::to_string(n) + " seed=" +
                           std::to_string(seed),
                       cache);
      ++solved;
    }
  }
  EXPECT_GE(cache->size(), 1u);
  EXPECT_LE(cache->size(), solved);
}

// --- whole-device bit-level agreement -------------------------------------

std::vector<MaxFlowPpuf::Evaluation> device_evaluations(
    std::uint64_t fab_seed, std::uint64_t challenge_seed, std::size_t count) {
  PpufParams params;
  params.node_count = 6;
  params.grid_size = 4;
  MaxFlowPpuf puf(params, fab_seed);
  util::Rng rng(challenge_seed);
  std::vector<MaxFlowPpuf::Evaluation> out;
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(puf.evaluate(random_challenge(puf.layout(), rng)));
  return out;
}

TEST(SparseDenseDifferential, DeviceResponseBitsIdenticalAcrossPaths) {
  // Fabricate the SAME instance twice — once characterised through the
  // sparse core, once through the dense oracle — and demand identical
  // response bits on a shared challenge stream.  The analog currents may
  // differ at solver tolerance; the bits may not differ at all.
  constexpr std::uint64_t kFab = 2718;
  constexpr std::uint64_t kChal = 42;
  constexpr std::size_t kCount = 16;

  const auto sparse = device_evaluations(kFab, kChal, kCount);
  std::vector<MaxFlowPpuf::Evaluation> dense;
  {
    DenseOracleScope oracle;
    dense = device_evaluations(kFab, kChal, kCount);
  }
  ASSERT_EQ(sparse.size(), dense.size());
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(sparse[i].converged) << "crp " << i;
    ASSERT_TRUE(dense[i].converged) << "crp " << i;
    EXPECT_EQ(sparse[i].bit, dense[i].bit) << "response bit drift, crp " << i;
    EXPECT_NEAR(sparse[i].current_a, dense[i].current_a,
                1e-12 + 1e-6 * std::abs(dense[i].current_a))
        << "crp " << i;
    EXPECT_NEAR(sparse[i].current_b, dense[i].current_b,
                1e-12 + 1e-6 * std::abs(dense[i].current_b))
        << "crp " << i;
  }
}

// --- warm start vs cold start ---------------------------------------------

TEST(SparseDenseDifferential, WarmStartedEvaluationKeepsColdBits) {
  PpufParams params;
  params.node_count = 6;
  params.grid_size = 4;
  MaxFlowPpuf puf(params, 1234);

  util::Rng rng(99);
  std::vector<Challenge> challenges;
  for (int i = 0; i < 12; ++i)
    challenges.push_back(random_challenge(puf.layout(), rng));

  std::vector<MaxFlowPpuf::Evaluation> cold;
  for (const Challenge& c : challenges) cold.push_back(puf.evaluate(c));

  ASSERT_FALSE(puf.warm_start_enabled());
  puf.set_warm_start(true);
  std::vector<MaxFlowPpuf::Evaluation> warm;
  for (const Challenge& c : challenges) warm.push_back(puf.evaluate(c));
  puf.set_warm_start(false);

  for (std::size_t i = 0; i < challenges.size(); ++i) {
    EXPECT_EQ(cold[i].bit, warm[i].bit) << "warm-start bit drift, round " << i;
    EXPECT_NEAR(cold[i].current_a, warm[i].current_a, 1e-12) << "round " << i;
    EXPECT_NEAR(cold[i].current_b, warm[i].current_b, 1e-12) << "round " << i;
  }

  // Cold evaluation stays bitwise repeatable after the warm interlude (the
  // stored operating point was discarded when warm-start was disabled).
  const MaxFlowPpuf::Evaluation again = puf.evaluate(challenges.front());
  EXPECT_DOUBLE_EQ(again.current_a, cold.front().current_a);
  EXPECT_DOUBLE_EQ(again.current_b, cold.front().current_b);
}

TEST(SparseDenseDifferential, ChainedAuthMatchesColdPerRoundReplay) {
  // prove_chain_with_ppuf warm-starts each round from the previous one.
  // Replaying the chain cold on a freshly fabricated identical instance
  // must reproduce every bit — and hence the same challenge chain, since
  // C_{i+1} depends on R_i.
  PpufParams params;
  params.node_count = 6;
  params.grid_size = 4;
  constexpr std::uint64_t kSeed = 5151;
  constexpr std::uint64_t kNonce = 77;
  constexpr std::size_t kRounds = 6;

  MaxFlowPpuf chained(params, kSeed);
  util::Rng rng(3);
  const Challenge first = random_challenge(chained.layout(), rng);
  const protocol::ChainedReport report =
      protocol::prove_chain_with_ppuf(chained, first, kRounds, kNonce, 1e-9);
  ASSERT_TRUE(report.status.is_ok());
  ASSERT_EQ(report.rounds.size(), kRounds);
  // The chain scope restored the instance's cold-start mode.
  EXPECT_FALSE(chained.warm_start_enabled());

  MaxFlowPpuf cold(params, kSeed);
  Challenge c = first;
  for (std::size_t i = 0; i < kRounds; ++i) {
    const protocol::ProverReport round = protocol::prove_with_ppuf(cold, c, 1e-9);
    EXPECT_EQ(round.bit, report.rounds[i].bit) << "chain round " << i;
    EXPECT_NEAR(round.flow_a, report.rounds[i].flow_a,
                1e-12 + 1e-6 * std::abs(round.flow_a))
        << "chain round " << i;
    EXPECT_NEAR(round.flow_b, report.rounds[i].flow_b,
                1e-12 + 1e-6 * std::abs(round.flow_b))
        << "chain round " << i;
    c = next_challenge(cold.layout(), c, round.bit, kNonce);
  }
}

// --- concurrent shared symbolic cache (the TSan target) -------------------

/// Fixed topology, rng-drawn values: every instance hits the same
/// SymbolicCache entry.
circuit::Netlist fixed_topology_netlist(util::Rng& rng) {
  circuit::Netlist nl;
  std::vector<circuit::NodeId> n;
  n.push_back(circuit::kGround);
  for (int i = 0; i < 6; ++i) n.push_back(nl.add_node());
  nl.add_voltage_source(n[1], circuit::kGround, rng.uniform(1.2, 1.8));
  for (int i = 1; i <= 5; ++i)
    nl.add_resistor(n[i], n[i + 1], rng.uniform(2e3, 8e3));
  nl.add_resistor(n[6], circuit::kGround, rng.uniform(2e3, 8e3));
  nl.add_resistor(n[2], n[5], rng.uniform(2e3, 8e3));
  circuit::DiodeParams dp;
  dp.saturation_current = rng.uniform(0.5e-11, 2e-11);
  nl.add_diode(n[3], circuit::kGround, dp);
  circuit::MosfetParams mp;
  mp.vth = rng.uniform(0.35, 0.45);
  nl.add_mosfet(n[4], n[2], circuit::kGround, mp);
  nl.add_current_source(n[1], n[5], rng.uniform(1e-6, 5e-6));
  return nl;
}

TEST(SparseDenseDifferential, ConcurrentSolversShareOneSymbolicAnalysis) {
  // 8 threads x 4 same-topology netlists, all routed through ONE cache:
  // the first thread to finish its analysis publishes it, everyone else
  // replays it.  Divergence from the dense oracle under any interleaving
  // is a real race.  gtest assertions are not thread-safe, so workers
  // count failures and the main thread asserts.
  auto cache = std::make_shared<circuit::SymbolicCache>();
  constexpr int kThreads = 8;
  constexpr int kSolvesPerThread = 4;
  std::atomic<int> divergences{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &cache, &divergences] {
      for (int rep = 0; rep < kSolvesPerThread; ++rep) {
        util::Rng rng(1000 + 17 * t + rep);
        const circuit::Netlist nl = fixed_topology_netlist(rng);
        if (!diff_one_netlist(nl, "", cache, /*quiet=*/true))
          divergences.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(divergences.load(), 0);
  // One topology -> exactly one cached structure, no duplicate insert won.
  EXPECT_EQ(cache->size(), 1u);
}

// --- degenerate input: typed non-convergence, never a throw ---------------

TEST(SparseDenseDifferential, SingularNetlistReturnsTypedNonConvergence) {
  // Two voltage sources pin the same node to different values: the MNA
  // matrix has two identical branch rows and is structurally singular at
  // every recovery rung.  Historically the dense LU threw std::runtime_error
  // from deep inside Newton; both cores now report through the Status
  // ladder and the solver returns a typed non-converged OperatingPoint —
  // exactly what a serving worker can survive.
  circuit::Netlist nl;
  const circuit::NodeId a = nl.add_node();
  nl.add_voltage_source(a, circuit::kGround, 1.0);
  nl.add_voltage_source(a, circuit::kGround, 2.0);

  for (const bool dense : {true, false}) {
    circuit::DcOptions opts;
    opts.use_dense_solver = dense;
    const circuit::DcSolver solver(nl, opts);
    circuit::OperatingPoint op;
    ASSERT_NO_THROW(op = solver.solve())
        << (dense ? "dense" : "sparse") << " path threw on singular MNA";
    EXPECT_FALSE(op.converged) << (dense ? "dense" : "sparse");
    EXPECT_FALSE(op.diagnostics.converged) << (dense ? "dense" : "sparse");
    // The ladder ran and recorded its attempts instead of aborting.
    EXPECT_FALSE(op.diagnostics.stages.empty())
        << (dense ? "dense" : "sparse");
  }
}

// --- serving warm path: registry-hydrated models vs the dense oracle ------

// The serving stack never touches a MaxFlowPpuf directly: enrollment
// characterises through the sparse core (sharing the registry's fleet
// SymbolicCache) and the AuthServer answers from a HydrationCache-
// materialised model, optionally through a device-keyed ResponseCache.
// This test pins that whole warm path against the dense oracle: the
// hydrated model's bits must equal a dense re-characterisation of the same
// silicon, and cached replies (fill pass and hit pass) must be bit- and
// flow-exact with the uncached solve.
TEST(SparseDenseDifferential, HydratedRegistryModelMatchesDenseOracle) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "sdd_registry";
  std::filesystem::remove_all(dir);
  registry::DeviceRegistry reg;
  ASSERT_TRUE(reg.open(dir.string()).is_ok());

  constexpr std::uint64_t kFabSeed = 8642;
  registry::EnrollRequest req;
  req.node_count = 6;
  req.grid_size = 4;
  req.seed = kFabSeed;
  req.label = "sdd";
  std::uint64_t id = 0;
  ASSERT_TRUE(reg.enroll(req, &id).is_ok());
  // Enrollment went through the sparse core and seeded the fleet cache.
  ASSERT_NE(reg.enroll_symbolic_cache(), nullptr);

  // Dense oracle: re-fabricate the same silicon and characterise every
  // block through the dense LU.
  std::optional<SimulationModel> oracle;
  {
    DenseOracleScope dense;
    PpufParams params;
    params.node_count = 6;
    params.grid_size = 4;
    MaxFlowPpuf chip(params, kFabSeed);
    oracle.emplace(chip);
  }

  // Serving path: hydrate through the cache with the shared response
  // cache attached at materialisation (the PR-7/PR-8 warm plane).
  ResponseCache response_cache(1 << 20);
  registry::HydrationCache::Options hopts;
  hopts.response_cache = &response_cache;
  registry::HydrationCache hydration(reg, hopts);
  std::shared_ptr<const registry::HydratedDevice> dev;
  ASSERT_TRUE(hydration.get(id, &dev).is_ok());
  ASSERT_EQ(dev->response_cache, &response_cache);
  // The backend-materialised device exposes its SimulationModel for
  // max-flow-only differential suites like this one.
  ASSERT_NE(dev->device->sim_model(), nullptr);
  const SimulationModel& model = *dev->device->sim_model();

  util::Rng rng(7);
  std::vector<Challenge> challenges;
  for (int i = 0; i < 12; ++i)
    challenges.push_back(random_challenge(model.layout(), rng));

  const SimulationModel::PredictBatchOptions uncached;
  const auto cold = model.predict_batch(challenges, uncached);

  SimulationModel::PredictBatchOptions cached;
  cached.cache = dev->response_cache;
  cached.cache_device_id = dev->id;
  const auto fill = model.predict_batch(challenges, cached);
  const auto warm = model.predict_batch(challenges, cached);

  ASSERT_EQ(cold.size(), challenges.size());
  for (std::size_t i = 0; i < challenges.size(); ++i) {
    ASSERT_TRUE(cold[i].ok()) << "challenge " << i;
    const SimulationModel::Prediction want = oracle->predict(challenges[i]);
    ASSERT_TRUE(want.ok()) << "challenge " << i;
    // Sparse-enrolled, hydration-served bits equal the dense oracle's;
    // flows agree within solver tolerance.
    EXPECT_EQ(cold[i].bit, want.bit) << "challenge " << i;
    EXPECT_NEAR(cold[i].flow_a, want.flow_a,
                1e-12 + 1e-6 * std::abs(want.flow_a))
        << "challenge " << i;
    EXPECT_NEAR(cold[i].flow_b, want.flow_b,
                1e-12 + 1e-6 * std::abs(want.flow_b))
        << "challenge " << i;
    // Cache fill and cache hit are exact copies of the uncached solve —
    // the cache must never launder a different response.
    for (const auto* pass : {&fill, &warm}) {
      ASSERT_TRUE((*pass)[i].ok()) << "challenge " << i;
      EXPECT_EQ((*pass)[i].bit, cold[i].bit) << "challenge " << i;
      EXPECT_EQ((*pass)[i].flow_a, cold[i].flow_a) << "challenge " << i;
      EXPECT_EQ((*pass)[i].flow_b, cold[i].flow_b) << "challenge " << i;
    }
  }
  // The second cached pass hit every entry.
  EXPECT_GE(response_cache.stats().hits, challenges.size());
}

}  // namespace
}  // namespace ppuf
