// Tests for src/maxflow: the three solvers, cross-checks, min-cut duality,
// and the verification asymmetry (Section 2 of the paper).
#include <gtest/gtest.h>

#include "graph/complete.hpp"
#include "maxflow/push_relabel.hpp"
#include "maxflow/solver.hpp"
#include "maxflow/verify.hpp"
#include "util/rng.hpp"

namespace ppuf::maxflow {
namespace {

using graph::Digraph;
using graph::FlowProblem;
using graph::VertexId;

/// The classic CLRS 26.1 example; max flow s->t is 23.
Digraph clrs_graph() {
  Digraph g(6);  // s=0, v1..v4=1..4, t=5
  g.add_edge(0, 1, 16);
  g.add_edge(0, 2, 13);
  g.add_edge(1, 3, 12);
  g.add_edge(2, 1, 4);
  g.add_edge(2, 4, 14);
  g.add_edge(3, 2, 9);
  g.add_edge(3, 5, 20);
  g.add_edge(4, 3, 7);
  g.add_edge(4, 5, 4);
  g.finalize();
  return g;
}

class AllSolvers : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AllSolvers, ClrsExampleValue) {
  const Digraph g = clrs_graph();
  const FlowResult r = make_solver(GetParam())->solve({&g, 0, 5});
  EXPECT_NEAR(r.value, 23.0, 1e-9);
}

TEST_P(AllSolvers, ClrsFlowIsVerifiedOptimal) {
  const Digraph g = clrs_graph();
  const FlowResult r = make_solver(GetParam())->solve({&g, 0, 5});
  const VerifyResult v = verify_flow(g, 0, 5, r.edge_flow, 1e-9);
  EXPECT_TRUE(v.feasible) << v.reason;
  EXPECT_TRUE(v.optimal) << v.reason;
  EXPECT_NEAR(v.value, 23.0, 1e-9);
}

TEST_P(AllSolvers, SingleEdge) {
  Digraph g(2);
  g.add_edge(0, 1, 3.5);
  g.finalize();
  const FlowResult r = make_solver(GetParam())->solve({&g, 0, 1});
  EXPECT_NEAR(r.value, 3.5, 1e-12);
}

TEST_P(AllSolvers, DisconnectedSinkGivesZero) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const FlowResult r = make_solver(GetParam())->solve({&g, 0, 2});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST_P(AllSolvers, SeriesBottleneck) {
  Digraph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  const FlowResult r = make_solver(GetParam())->solve({&g, 0, 2});
  EXPECT_NEAR(r.value, 2.0, 1e-12);
}

TEST_P(AllSolvers, ParallelPathsAdd) {
  Digraph g(4);
  g.add_edge(0, 1, 3.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(0, 2, 4.0);
  g.add_edge(2, 3, 4.0);
  g.finalize();
  const FlowResult r = make_solver(GetParam())->solve({&g, 0, 3});
  EXPECT_NEAR(r.value, 7.0, 1e-12);
}

TEST_P(AllSolvers, AntiparallelEdgesHandled) {
  Digraph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 0, 5.0);  // antiparallel back edge
  g.add_edge(1, 2, 3.0);
  g.finalize();
  const FlowResult r = make_solver(GetParam())->solve({&g, 0, 2});
  EXPECT_NEAR(r.value, 3.0, 1e-12);
}

TEST_P(AllSolvers, SourceEqualsSinkThrows) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  EXPECT_THROW(make_solver(GetParam())->solve({&g, 1, 1}),
               std::invalid_argument);
}

TEST_P(AllSolvers, ZeroCapacityEdgesCarryNothing) {
  Digraph g(3);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 7.0);
  g.finalize();
  const FlowResult r = make_solver(GetParam())->solve({&g, 0, 2});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AllSolvers,
    ::testing::ValuesIn(all_algorithms()),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string n = algorithm_name(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

/// Property suite: on random graphs all three algorithms agree, the flow is
/// verified maximum, and max-flow equals the min-cut found from residual
/// reachability.
struct RandomCase {
  std::uint64_t seed;
  std::size_t n;
  double density;  // 1.0 -> complete graph
};

class RandomGraphProperty : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomGraphProperty, SolversAgreeAndDualityHolds) {
  const RandomCase& rc = GetParam();
  util::Rng rng(rc.seed);
  const Digraph g = rc.density >= 1.0
                        ? graph::make_complete_uniform(rc.n, rng)
                        : graph::make_random(rc.n, rc.density, rng);
  const VertexId s = 0;
  const auto t = static_cast<VertexId>(rc.n - 1);

  std::vector<FlowResult> results;
  for (const Algorithm a : all_algorithms())
    results.push_back(make_solver(a)->solve({&g, s, t}));

  const double tol = 1e-9 * std::max(1.0, results[0].value);
  EXPECT_NEAR(results[0].value, results[1].value, tol);
  EXPECT_NEAR(results[0].value, results[2].value, tol);

  for (const FlowResult& r : results) {
    const VerifyResult v = verify_flow(g, s, t, r.edge_flow, 1e-9);
    EXPECT_TRUE(v.optimal) << v.reason;
    EXPECT_NEAR(v.value, r.value, tol);
    // Max-flow = min-cut: the cut at the residual-reachable boundary has
    // capacity equal to the flow value.
    const auto side = residual_reachable(g, s, r.edge_flow, 1e-9);
    EXPECT_TRUE(side[s]);
    EXPECT_FALSE(side[t]);
    EXPECT_NEAR(cut_capacity(g, side), r.value, tol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, RandomGraphProperty,
    ::testing::Values(RandomCase{1, 8, 1.0}, RandomCase{2, 12, 1.0},
                      RandomCase{3, 16, 1.0}, RandomCase{4, 24, 1.0},
                      RandomCase{5, 20, 0.3}, RandomCase{6, 30, 0.2},
                      RandomCase{7, 40, 0.1}, RandomCase{8, 25, 0.5},
                      RandomCase{9, 10, 0.8}, RandomCase{10, 50, 0.08}));

TEST(Verify, DetectsCapacityViolation) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const std::vector<double> flow{2.0};
  const VerifyResult v = verify_flow(g, 0, 1, flow, 1e-9);
  EXPECT_FALSE(v.feasible);
  EXPECT_NE(v.reason.find("capacity"), std::string::npos);
}

TEST(Verify, DetectsNegativeFlow) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const VerifyResult v = verify_flow(g, 0, 1, std::vector<double>{-0.5}, 1e-9);
  EXPECT_FALSE(v.feasible);
}

TEST(Verify, DetectsConservationViolation) {
  Digraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 2.0);
  g.finalize();
  const std::vector<double> flow{2.0, 1.0};  // vertex 1 stores flow
  const VerifyResult v = verify_flow(g, 0, 2, flow, 1e-9);
  EXPECT_FALSE(v.feasible);
  EXPECT_NE(v.reason.find("conservation"), std::string::npos);
}

TEST(Verify, DetectsSuboptimalFlow) {
  Digraph g(2);
  g.add_edge(0, 1, 2.0);
  g.finalize();
  const VerifyResult v = verify_flow(g, 0, 1, std::vector<double>{1.0}, 1e-9);
  EXPECT_TRUE(v.feasible);
  EXPECT_FALSE(v.optimal);
  EXPECT_NE(v.reason.find("augmenting"), std::string::npos);
}

TEST(Verify, ZeroFlowOnDisconnectedIsOptimal) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  const VerifyResult v =
      verify_flow(g, 0, 2, std::vector<double>{0.0}, 1e-9);
  EXPECT_TRUE(v.optimal);
  EXPECT_DOUBLE_EQ(v.value, 0.0);
}

TEST(Verify, ParallelVerificationMatchesSerial) {
  util::Rng rng(17);
  const Digraph g = graph::make_complete_uniform(20, rng);
  const FlowResult r = make_solver(Algorithm::kDinic)->solve({&g, 0, 19});
  const VerifyResult serial = verify_flow(g, 0, 19, r.edge_flow, 1e-9, 1);
  const VerifyResult par = verify_flow(g, 0, 19, r.edge_flow, 1e-9, 4);
  EXPECT_EQ(serial.optimal, par.optimal);
  EXPECT_NEAR(serial.value, par.value, 1e-12);
}

TEST(Verify, ToleranceAbsorbsMeasurementNoise) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.finalize();
  // 0.5% over capacity: rejected at tight tolerance, accepted at 1%.
  const std::vector<double> flow{1.005};
  EXPECT_FALSE(verify_flow(g, 0, 1, flow, 1e-6).feasible);
  EXPECT_TRUE(verify_flow(g, 0, 1, flow, 0.01).optimal);
}

// Regression: the conservation slack used to be tolerance * (out_degree +
// 1), which under-counts at vertices whose in-degree exceeds one — eight
// incoming edges each carrying a legitimate per-edge error of 0.9*tol sum
// to 7.2*tol of net imbalance, far above the old 2*tol slack, and the
// honest flow was falsely rejected.  The slack must scale with the full
// incident count (in-degree + out-degree).
TEST(Verify, HighInDegreeVertexToleratesPerEdgeNoise) {
  // Funnel: source 0 -> {1..8} -> 9 -> sink 10.
  Digraph g(11);
  for (VertexId v = 1; v <= 8; ++v) g.add_edge(0, v, 1.0);
  for (VertexId v = 1; v <= 8; ++v) g.add_edge(v, 9, 1.0);
  g.add_edge(9, 10, 2.0);
  g.finalize();

  const double tol = 1e-6;
  std::vector<double> flow(g.edge_count(), 0.0);
  for (std::size_t e = 0; e < 8; ++e) flow[e] = 0.25;
  // Each middle edge reads 0.9*tol high: fine per edge, but vertex 9
  // accumulates 8 * 0.9*tol = 7.2*tol of apparent excess.
  for (std::size_t e = 8; e < 16; ++e) flow[e] = 0.25 + 0.9 * tol;
  flow[16] = 2.0;  // saturated, so the flow is maximum

  const VerifyResult v = verify_flow(g, 0, 10, flow, tol);
  EXPECT_TRUE(v.feasible) << v.reason;
  EXPECT_TRUE(v.optimal) << v.reason;
  EXPECT_NEAR(v.value, 2.0, 1e-9);
}

TEST(PushRelabel, HeuristicsDoNotChangeTheValue) {
  util::Rng rng(23);
  const Digraph g = graph::make_complete_uniform(18, rng);
  const FlowProblem p{&g, 2, 9};
  PushRelabelOptions plain;
  plain.gap_heuristic = false;
  plain.global_relabel = false;
  const FlowResult a = PushRelabel(plain).solve(p);
  const FlowResult b = PushRelabel().solve(p);
  EXPECT_NEAR(a.value, b.value, 1e-9 * std::max(1.0, a.value));
}

TEST(PushRelabel, GlobalRelabelReducesWorkOnCompleteGraphs) {
  util::Rng rng(29);
  const Digraph g = graph::make_complete_uniform(40, rng);
  const FlowProblem p{&g, 0, 39};
  PushRelabelOptions plain;
  plain.gap_heuristic = false;
  plain.global_relabel = false;
  const FlowResult slow = PushRelabel(plain).solve(p);
  const FlowResult fast = PushRelabel().solve(p);
  // Not a strict theorem, but robust in practice at this size; regression
  // here means a heuristic was broken.
  EXPECT_LE(fast.work, slow.work * 2);
}

TEST(Solver, NamesAreDistinct) {
  EXPECT_NE(algorithm_name(Algorithm::kEdmondsKarp),
            algorithm_name(Algorithm::kDinic));
  EXPECT_NE(algorithm_name(Algorithm::kDinic),
            algorithm_name(Algorithm::kPushRelabel));
}

}  // namespace
}  // namespace ppuf::maxflow
