// Unit tests for the obs metrics subsystem (src/obs/metrics.hpp).
//
// The layer's contract has two halves that both need teeth:
//   1. Enabled: counters are exact under concurrency, histograms bound
//      their percentile error by the log2 bucket width, JSON snapshots
//      round-trip the registry contents.
//   2. Disabled: the hot-path calls (counter()/gauge()/histogram(),
//      ScopedTimer) allocate nothing and register nothing — the layer's
//      "near-zero cost when off" claim, checked with a counting
//      operator new rather than taken on faith.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

// Counting global operator new: lets the disabled-mode test assert "zero
// allocations happened here".  Delegates straight to malloc/free; gtest and
// the enabled-mode tests allocate freely through it.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ppuf::obs {
namespace {

TEST(ObsMetrics, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(ObsMetrics, ConcurrentCounterIncrementsAreExact) {
  // Relaxed atomics must still be EXACT: fetch_add loses nothing.  Run
  // enough increments from enough threads that a torn non-atomic counter
  // would essentially never pass.  (Also the TSan meat of this suite.)
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetrics, HistogramTracksCountSumMinMax) {
  Histogram h;
  h.record(3.0);
  h.record(5.0);
  h.record(100.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 108.0);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 36.0);
}

TEST(ObsMetrics, HistogramPercentilesWithinBucketErrorBound) {
  // 1..1000 uniformly: exact p50 = 500, p95 = 950, p99 = 990.  The log2
  // buckets bound the estimate by a factor of two around the true value;
  // assert generous brackets rather than chasing interpolation details.
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GE(s.p50, 250.0);
  EXPECT_LE(s.p50, 1000.0);
  EXPECT_GE(s.p95, 475.0);
  EXPECT_LE(s.p95, 1000.0);
  EXPECT_GE(s.p99, 495.0);
  EXPECT_LE(s.p99, 1000.0);
  // Percentiles are ordered and clamped to the observed range.
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
}

TEST(ObsMetrics, HistogramClampsNegativeAndNanToZero) {
  Histogram h;
  h.record(-7.0);
  h.record(std::nan(""));
  h.record(2.0);
  const HistogramSnapshot s = h.snapshot();
  // Nothing dropped: count equals record() calls.
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter_value("x.count"), 3u);
  // Same name, different kind: independent metrics.
  reg.gauge("x.count").set(9);
  EXPECT_EQ(reg.counter_value("x.count"), 3u);
  EXPECT_EQ(reg.gauge_value("x.count"), 9);
}

TEST(ObsMetrics, ResetZeroesValuesButKeepsRegistration) {
  MetricsRegistry reg(/*enabled=*/true);
  Counter& c = reg.counter("a.b");
  c.add(5);
  reg.histogram("a.h").record(1.0);
  reg.reset();
  EXPECT_EQ(reg.counter_value("a.b"), 0u);
  EXPECT_EQ(reg.histogram_snapshot("a.h").count, 0u);
  EXPECT_TRUE(reg.has_metric("a.b"));
  // The pre-reset reference is still the live metric (hoisted pointers in
  // batch loops survive epochs).
  c.add(2);
  EXPECT_EQ(reg.counter_value("a.b"), 2u);
}

TEST(ObsMetrics, DisabledRegistryAllocatesNothing) {
  MetricsRegistry reg(/*enabled=*/false);
  // Warm up any lazily-created dummies before counting.
  reg.counter("warmup").add();
  reg.gauge("warmup").set(1);
  reg.histogram("warmup").record(1.0);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100; ++i) {
    reg.counter("hot.path.counter").add();
    reg.gauge("hot.path.gauge").set(i);
    reg.histogram("hot.path.histogram").record(1.5);
    ScopedTimer timer(reg, "hot.path.timer_us");
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
  // Nothing registered either: disabled lookups never touch the map.
  EXPECT_EQ(reg.metric_count(), 0u);
}

TEST(ObsMetrics, ScopedTimerRecordsElapsedMicroseconds) {
  MetricsRegistry reg(/*enabled=*/true);
  {
    ScopedTimer timer(reg, "t.us");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const HistogramSnapshot s = reg.histogram_snapshot("t.us");
  ASSERT_EQ(s.count, 1u);
  // Sleeps only guarantee a lower bound.
  EXPECT_GE(s.min, 5000.0 * 0.5);
}

TEST(ObsMetrics, ScopedTimerOnDisabledRegistryRecordsNothing) {
  MetricsRegistry reg(/*enabled=*/false);
  { ScopedTimer timer(reg, "t.us"); }
  reg.set_enabled(true);
  EXPECT_FALSE(reg.has_metric("t.us"));
}

// Minimal JSON reader for the snapshot round-trip: enough to pull a
// numeric field out of {"counters": {...}, ...} without a JSON dependency.
double json_number_at(const std::string& json, const std::string& key) {
  const std::string quoted = "\"" + key + "\":";
  const std::size_t at = json.find(quoted);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << json;
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + quoted.size(), nullptr);
}

TEST(ObsMetrics, JsonSnapshotRoundTripsValues) {
  MetricsRegistry reg(/*enabled=*/true);
  reg.counter("c.one").add(7);
  reg.gauge("g.level").set(-3);
  Histogram& h = reg.histogram("h.lat_us");
  h.record(10.0);
  h.record(30.0);

  const std::string json = reg.to_json();
  EXPECT_DOUBLE_EQ(json_number_at(json, "c.one"), 7.0);
  EXPECT_DOUBLE_EQ(json_number_at(json, "g.level"), -3.0);
  // Histogram object fields appear after its name.
  const std::size_t hat = json.find("\"h.lat_us\"");
  ASSERT_NE(hat, std::string::npos);
  const std::string tail = json.substr(hat);
  EXPECT_DOUBLE_EQ(json_number_at(tail, "count"), 2.0);
  EXPECT_DOUBLE_EQ(json_number_at(tail, "sum"), 40.0);
  EXPECT_DOUBLE_EQ(json_number_at(tail, "min"), 10.0);
  EXPECT_DOUBLE_EQ(json_number_at(tail, "max"), 30.0);
  // The three sections always exist, even when empty.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(ObsMetrics, StandardMetricsPreRegisterTheFullSchema) {
  // Snapshots from tools/benches must always carry the canonical names,
  // as zeros, even when the command never exercised that subsystem.
  MetricsRegistry reg(/*enabled=*/true);
  register_standard_metrics(reg);
  for (const char* name :
       {"maxflow.dinic.solves", "maxflow.push_relabel.discharges",
        "circuit.dc.newton_iterations", "ppuf.network_solver.solves",
        "maxflow.batch.retries", "ppuf.predict_batch.cache_hits",
        "protocol.verify_batch.accepted"}) {
    EXPECT_TRUE(reg.has_metric(name)) << name;
    EXPECT_EQ(reg.counter_value(name), 0u) << name;
  }
  for (const char* name :
       {"maxflow.dinic.solve_time_us", "circuit.dc.iterations_per_solve",
        "maxflow.batch.item_time_us", "ppuf.predict_batch.item_time_us",
        "protocol.verify_batch.item_time_us"}) {
    EXPECT_TRUE(reg.has_metric(name)) << name;
    EXPECT_EQ(reg.histogram_snapshot(name).count, 0u) << name;
  }
  EXPECT_TRUE(reg.has_metric("ppuf.response_cache.hits"));
  // On a disabled registry the call is a no-op.
  MetricsRegistry off(/*enabled=*/false);
  register_standard_metrics(off);
  EXPECT_EQ(off.metric_count(), 0u);
}

TEST(ObsMetrics, ConcurrentRegistryAccessIsSafe) {
  // Several threads resolving overlapping names while recording: the map
  // mutex covers creation, the metrics themselves are lock-free.
  MetricsRegistry reg(/*enabled=*/true);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string own = "thread." + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        reg.counter("shared.counter").add();
        reg.counter(own).add();
        reg.histogram("shared.hist").record(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter_value("shared.counter"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram_snapshot("shared.hist").count,
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter_value("thread." + std::to_string(t)),
              static_cast<std::uint64_t>(kIters));
  }
}

}  // namespace
}  // namespace ppuf::obs
