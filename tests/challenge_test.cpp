// Tests for challenge encoding, the crossbar layout / grid partition, and
// challenge sampling utilities.
#include <gtest/gtest.h>

#include <set>

#include "ppuf/challenge.hpp"

namespace ppuf {
namespace {

TEST(CrossbarLayout, Validation) {
  EXPECT_THROW(CrossbarLayout(1, 1), std::invalid_argument);
  EXPECT_THROW(CrossbarLayout(4, 0), std::invalid_argument);
  EXPECT_THROW(CrossbarLayout(4, 5), std::invalid_argument);
  const CrossbarLayout ok(8, 4);
  EXPECT_EQ(ok.node_count(), 8u);
  EXPECT_EQ(ok.cell_count(), 16u);
  EXPECT_EQ(ok.edge_count(), 56u);
}

TEST(CrossbarLayout, CellPartitionIsEvenAndExhaustive) {
  const CrossbarLayout layout(8, 4);
  std::vector<std::size_t> count(layout.cell_count(), 0);
  for (graph::VertexId i = 0; i < 8; ++i) {
    for (graph::VertexId j = 0; j < 8; ++j) {
      if (i == j) continue;
      const std::size_t cell = layout.cell_of_edge(i, j);
      ASSERT_LT(cell, layout.cell_count());
      ++count[cell];
    }
  }
  // Each 2x2 tile of the 8x8 crossbar holds 4 blocks, minus the diagonal
  // in the 4 diagonal cells.
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      EXPECT_EQ(count[a * 4 + b], a == b ? 2u : 4u);
    }
  }
}

TEST(CrossbarLayout, DiagonalRejected) {
  const CrossbarLayout layout(8, 4);
  EXPECT_THROW(layout.cell_of_edge(3, 3), std::invalid_argument);
}

TEST(CrossbarLayout, GridSizeEqualToNodesGivesPerEdgeControlRows) {
  // l = n: every (row, column) pair is its own cell.
  const CrossbarLayout layout(4, 4);
  std::set<std::size_t> cells;
  for (graph::VertexId i = 0; i < 4; ++i)
    for (graph::VertexId j = 0; j < 4; ++j)
      if (i != j) cells.insert(layout.cell_of_edge(i, j));
  EXPECT_EQ(cells.size(), 12u);  // all off-diagonal cells distinct
}

TEST(CrossbarLayout, DiePositionsInUnitSquare) {
  const CrossbarLayout layout(10, 5);
  double x = -1.0, y = -1.0;
  layout.die_position(0, 9, &x, &y);
  EXPECT_GT(x, 0.0);
  EXPECT_LT(x, 1.0);
  EXPECT_GT(y, 0.0);
  EXPECT_LT(y, 1.0);
}

TEST(Challenge, RandomChallengeWellFormed) {
  const CrossbarLayout layout(10, 4);
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Challenge c = random_challenge(layout, rng);
    EXPECT_NE(c.source, c.sink);
    EXPECT_LT(c.source, 10u);
    EXPECT_LT(c.sink, 10u);
    EXPECT_EQ(c.bits.size(), 16u);
  }
}

TEST(Challenge, SourceSinkCoverAllPairs) {
  const CrossbarLayout layout(4, 2);
  util::Rng rng(5);
  std::set<std::pair<unsigned, unsigned>> seen;
  for (int i = 0; i < 600; ++i) {
    const Challenge c = random_challenge(layout, rng);
    seen.emplace(c.source, c.sink);
  }
  EXPECT_EQ(seen.size(), 12u);  // all n(n-1) ordered pairs occur
}

TEST(Challenge, FixedEndsRespected) {
  const CrossbarLayout layout(10, 4);
  util::Rng rng(3);
  const Challenge c = random_challenge_fixed_ends(layout, 2, 7, rng);
  EXPECT_EQ(c.source, 2u);
  EXPECT_EQ(c.sink, 7u);
  EXPECT_THROW(random_challenge_fixed_ends(layout, 3, 3, rng),
               std::invalid_argument);
}

TEST(Challenge, FlipBitsExactDistance) {
  const CrossbarLayout layout(10, 4);
  util::Rng rng(9);
  const Challenge base = random_challenge(layout, rng);
  for (const std::size_t d : {0u, 1u, 5u, 16u}) {
    const Challenge moved = flip_bits(base, d, rng);
    EXPECT_EQ(hamming_distance(base, moved), d);
    EXPECT_EQ(moved.source, base.source);
    EXPECT_EQ(moved.sink, base.sink);
  }
  EXPECT_THROW(flip_bits(base, 17, rng), std::invalid_argument);
}

TEST(Challenge, HammingDistanceBasics) {
  Challenge a, b;
  a.bits = {1, 0, 1, 1};
  b.bits = {1, 1, 1, 0};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  b.bits = {1, 0};
  EXPECT_THROW(hamming_distance(a, b), std::invalid_argument);
}

TEST(Challenge, EqualityIncludesEverything) {
  const CrossbarLayout layout(6, 3);
  util::Rng rng(1);
  const Challenge a = random_challenge(layout, rng);
  Challenge b = a;
  EXPECT_EQ(a, b);
  b.sink = b.sink == 0 ? 1 : 0;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace ppuf
