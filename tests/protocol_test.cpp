// Tests for the time-bound authentication protocol.
#include <gtest/gtest.h>

#include "protocol/authentication.hpp"

namespace ppuf::protocol {
namespace {

struct ProtocolFixture : public ::testing::Test {
  ProtocolFixture() {
    PpufParams p;
    p.node_count = 10;
    p.grid_size = 4;
    puf = std::make_unique<MaxFlowPpuf>(p, 404);
    model = std::make_unique<SimulationModel>(*puf);
  }

  /// Flow tolerance: ~10% of a typical edge capacity absorbs the
  /// circuit-vs-max-flow inaccuracy, including under-saturated min-cut
  /// edges (see authentication.hpp).
  double tolerance() const {
    double mean_cap = 0.0;
    const std::size_t edges = puf->layout().edge_count();
    for (graph::EdgeId e = 0; e < edges; ++e)
      mean_cap += model->capacity(0, e, 0);
    mean_cap /= static_cast<double>(edges);
    return 0.10 * mean_cap;
  }

  std::unique_ptr<MaxFlowPpuf> puf;
  std::unique_ptr<SimulationModel> model;
  util::Rng rng{11};
};

TEST_F(ProtocolFixture, HonestProverAccepted) {
  const Verifier verifier(*model, /*deadline=*/1e-3, tolerance());
  const Challenge c = verifier.issue_challenge(rng);
  const ProverReport report = prove_with_ppuf(*puf, c, 1e-6);
  const AuthenticationResult r = verifier.verify(c, report);
  EXPECT_TRUE(r.accepted) << r.detail;
  EXPECT_TRUE(r.flows_valid);
  EXPECT_TRUE(r.bit_consistent);
  EXPECT_TRUE(r.in_time);
}

TEST_F(ProtocolFixture, SimulatingProverIsCorrectButCanBeTimedOut) {
  // With a loose deadline the simulator passes (its flows are exactly
  // feasible); with a deadline below its wall-clock it is rejected.
  const Challenge c = random_challenge(puf->layout(), rng);
  const ProverReport sim = prove_by_simulation(*model, c);
  EXPECT_GT(sim.elapsed_seconds, 0.0);

  const Verifier loose(*model, 1e9, tolerance());
  EXPECT_TRUE(loose.verify(c, sim).accepted);

  const Verifier tight(*model, sim.elapsed_seconds * 0.5, tolerance());
  const AuthenticationResult r = tight.verify(c, sim);
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.in_time);
  EXPECT_NE(r.detail.find("deadline"), std::string::npos);
}

TEST_F(ProtocolFixture, WrongBitRejected) {
  const Verifier verifier(*model, 1e-3, tolerance());
  const Challenge c = verifier.issue_challenge(rng);
  ProverReport report = prove_with_ppuf(*puf, c, 1e-6);
  report.bit ^= 1;
  const AuthenticationResult r = verifier.verify(c, report);
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.bit_consistent);
}

TEST_F(ProtocolFixture, InflatedFlowClaimRejected) {
  const Verifier verifier(*model, 1e-3, tolerance());
  const Challenge c = verifier.issue_challenge(rng);
  ProverReport report = prove_with_ppuf(*puf, c, 1e-6);
  // Claim an over-capacity flow on the strongest edge of network A, as the
  // challenge configures it.  Doubling the largest capacity exceeds it by
  // more than the verifier tolerance (10% of the mean), so the capacity
  // constraint itself must reject, independent of conservation slack.
  const graph::Digraph g = model->build_graph(0, c);
  graph::EdgeId strongest = 0;
  for (graph::EdgeId e = 1; e < g.edge_count(); ++e)
    if (g.edge(e).capacity > g.edge(strongest).capacity) strongest = e;
  report.edge_flow_a[strongest] = g.edge(strongest).capacity * 2.0;
  const AuthenticationResult r = verifier.verify(c, report);
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.flows_valid);
}

TEST_F(ProtocolFixture, SuboptimalFlowRejected) {
  const Verifier verifier(*model, 1e-3, tolerance());
  const Challenge c = verifier.issue_challenge(rng);
  ProverReport report = prove_with_ppuf(*puf, c, 1e-6);
  // Zeroed flows conserve trivially but leave an augmenting path.
  std::fill(report.edge_flow_a.begin(), report.edge_flow_a.end(), 0.0);
  report.flow_a = 0.0;
  const AuthenticationResult r = verifier.verify(c, report);
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.detail.find("network A"), std::string::npos);
}

TEST_F(ProtocolFixture, ChainedHonestProverAccepted) {
  const std::size_t k = 4;
  const Verifier verifier(*model, /*total deadline=*/1.0, tolerance());
  const Challenge c1 = random_challenge(puf->layout(), rng);
  const protocol::ChainedReport report =
      prove_chain_with_ppuf(*puf, c1, k, 99, 1e-6);
  util::Rng vrng(1);
  const auto r =
      verify_chain(verifier, *model, c1, k, 99, report, 2, vrng);
  EXPECT_TRUE(r.accepted) << r.detail;
  EXPECT_TRUE(r.chain_consistent);
  EXPECT_TRUE(r.rounds_valid);
}

TEST_F(ProtocolFixture, ChainedSimulatorMatchesButSlower) {
  const std::size_t k = 3;
  const Challenge c1 = random_challenge(puf->layout(), rng);
  const protocol::ChainedReport honest =
      prove_chain_with_ppuf(*puf, c1, k, 7, 1e-6);
  const protocol::ChainedReport sim =
      prove_chain_by_simulation(*model, c1, k, 7);
  // The simulation model is faithful, so the chains agree bit for bit...
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_EQ(honest.rounds[i].bit, sim.rounds[i].bit);
  // ...but a tight chain deadline rejects the simulator on time.
  const Verifier tight(*model, sim.elapsed_seconds * 0.5, tolerance());
  util::Rng vrng(2);
  const auto r = verify_chain(tight, *model, c1, k, 7, sim, 0, vrng);
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.in_time);
}

TEST_F(ProtocolFixture, ChainedTamperedRoundDetectedWithFullChecks) {
  const std::size_t k = 4;
  const Verifier verifier(*model, 1.0, tolerance());
  const Challenge c1 = random_challenge(puf->layout(), rng);
  protocol::ChainedReport report =
      prove_chain_with_ppuf(*puf, c1, k, 13, 1e-6);
  // Corrupt the claimed flows of round 2.
  std::fill(report.rounds[2].edge_flow_a.begin(),
            report.rounds[2].edge_flow_a.end(), 0.0);
  util::Rng vrng(3);
  const auto r =
      verify_chain(verifier, *model, c1, k, 13, report, 0, vrng);
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.detail.find("round 2"), std::string::npos);
}

TEST_F(ProtocolFixture, ChainedWrongRoundCountRejected) {
  const Verifier verifier(*model, 1.0, tolerance());
  const Challenge c1 = random_challenge(puf->layout(), rng);
  const protocol::ChainedReport report =
      prove_chain_with_ppuf(*puf, c1, 3, 5, 1e-6);
  util::Rng vrng(4);
  const auto r = verify_chain(verifier, *model, c1, 4, 5, report, 0, vrng);
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.detail.find("round count"), std::string::npos);
}

TEST_F(ProtocolFixture, ParallelVerificationAgrees) {
  const Verifier serial(*model, 1e-3, tolerance(), 1);
  const Verifier parallel(*model, 1e-3, tolerance(), 4);
  const Challenge c = serial.issue_challenge(rng);
  const ProverReport report = prove_with_ppuf(*puf, c, 1e-6);
  EXPECT_EQ(serial.verify(c, report).accepted,
            parallel.verify(c, report).accepted);
}

}  // namespace
}  // namespace ppuf::protocol
