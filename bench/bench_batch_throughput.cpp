// Batch prediction throughput on the concurrent evaluation engine.
//
// The verifier side of the paper's asymmetry only matters at scale if the
// reproduction can actually serve volume: this bench measures items/sec of
// SimulationModel::predict_batch over a 200-item batch of n=32 instances
// at 1, 2, 4 and hardware-concurrency worker threads, then the response
// cache's effect on a 100% repeated-challenge batch (the feedback-chain /
// repeat-customer pattern).  Results also land in a JSON file (argv[1],
// default BENCH_batch.json) so CI can archive the trend.
//
// A sparse-vs-dense leg gates the MNA linear core: one n=8 crossbar
// challenge is flattened transistor-by-transistor into a single MNA system
// (~850 unknowns) and the full cold DC solve is timed through the sparse
// core (slot-replayed assembly + Gilbert-Peierls LU with min-degree
// ordering) and through the dense LU oracle.  The acceptance gate is a
// >= 5x sparse speedup with matching source currents; the measured ratio
// lands in the JSON as "sparse_vs_dense_speedup".
//
// A final leg measures the cost of the obs metrics layer itself: the same
// single-thread uncached batch with the registry enabled versus disabled
// (median of 3 runs each).  The budget is < 3% throughput change; the
// measured number is recorded in the JSON and a warning (not a failure —
// the delta is noise-bound on loaded CI hosts) is printed when exceeded.
// The enabled-registry run's full snapshot is written to argv[2] (default
// metrics_snapshot.json) so CI archives what the counters actually saw.
//
// Scaling expectation: items are independent max-flow solves, so on a
// p-core host items/sec should grow near-linearly until p saturates (the
// 4-thread column is the acceptance gate: >= 3x the 1-thread column on a
// 4+ core machine).  On fewer cores the ratio degrades to the core count,
// which the JSON records via "hardware_concurrency".
#include <fstream>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include <filesystem>

#include "attack/harness.hpp"
#include "backend/backend.hpp"
#include "bench_common.hpp"
#include "circuit/dc.hpp"
#include "obs/metrics.hpp"
#include "ppuf/device_netlist.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/response_cache.hpp"
#include "ppuf/sim_model.hpp"
#include "puf/arbiter.hpp"
#include "registry/device_registry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ppuf;

constexpr std::size_t kNodes = 32;
constexpr std::size_t kGrid = 8;
constexpr std::uint64_t kFabricationSeed = 2026;
constexpr std::uint64_t kChallengeSeed = 7;

/// Per-backend results for the heterogeneous-fleet leg.
struct BackendLeg {
  double enrolls_per_sec = 0.0;
  double predicts_per_sec = 0.0;
  double attack_error_small = 1.0;  ///< best-of-suite error, small N
  double attack_error_large = 1.0;  ///< best-of-suite error, large N
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_batch.json";
  const std::string metrics_path =
      argc > 2 ? argv[2] : "metrics_snapshot.json";
  const std::size_t items = bench::scaled(200, 50);

  std::cout << "fabricating n=" << kNodes << " instance and extracting the "
            << "public model...\n";
  PpufParams params;
  params.node_count = kNodes;
  params.grid_size = kGrid;
  MaxFlowPpuf puf(params, kFabricationSeed);
  SimulationModel model(puf);

  util::Rng rng(kChallengeSeed);
  std::vector<Challenge> batch;
  batch.reserve(items);
  for (std::size_t i = 0; i < items; ++i)
    batch.push_back(random_challenge(model.layout(), rng));

  const unsigned hw = util::ThreadPool::default_thread_count();
  std::vector<unsigned> thread_counts{1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  util::Table table({"threads", "items/s", "seconds", "speedup"});
  std::map<unsigned, double> items_per_sec;
  double baseline = 0.0;
  std::vector<SimulationModel::Prediction> reference;
  for (const unsigned threads : thread_counts) {
    util::ThreadPool pool(threads);
    SimulationModel::PredictBatchOptions options;
    options.pool = &pool;
    std::vector<SimulationModel::Prediction> predictions;
    const double seconds = bench::time_seconds(
        [&] { predictions = model.predict_batch(batch, options); });
    const double ips = static_cast<double>(items) / seconds;
    items_per_sec[threads] = ips;
    if (threads == 1) {
      baseline = ips;
      reference = predictions;
    } else {
      // Worker count must never change the answers.
      for (std::size_t i = 0; i < items; ++i) {
        if (predictions[i].bit != reference[i].bit ||
            predictions[i].flow_a != reference[i].flow_a ||
            predictions[i].flow_b != reference[i].flow_b) {
          std::cerr << "FATAL: thread count changed item " << i << "\n";
          return 1;
        }
      }
    }
    table.add_row({std::to_string(threads), util::Table::num(ips, 4),
                   util::Table::num(seconds, 3),
                   util::Table::num(ips / baseline, 3)});
  }
  table.print(std::cout);

  // Cache leg: warm the cache with one pass, then a batch that is 100%
  // repeated challenges.  Every item should hit; the acceptance gate is
  // >= 99% hit rate reported for the repeated batch alone.
  ResponseCache cache(64 * 1024 * 1024);
  SimulationModel::PredictBatchOptions cached;
  cached.cache = &cache;
  cached.thread_count = 1;
  (void)model.predict_batch(batch, cached);  // warm: all misses
  const ResponseCacheStats warm = cache.stats();
  double cached_seconds = 0.0;
  cached_seconds = bench::time_seconds(
      [&] { (void)model.predict_batch(batch, cached); });
  const ResponseCacheStats after = cache.stats();
  const std::uint64_t repeat_hits = after.hits - warm.hits;
  const std::uint64_t repeat_misses = after.misses - warm.misses;
  const double repeat_hit_rate =
      static_cast<double>(repeat_hits) /
      static_cast<double>(repeat_hits + repeat_misses);
  const double cached_ips = static_cast<double>(items) / cached_seconds;
  std::cout << "repeated-challenge batch: " << repeat_hits << "/"
            << (repeat_hits + repeat_misses) << " cache hits ("
            << repeat_hit_rate * 100.0 << "%), "
            << util::Table::num(cached_ips, 4) << " items/s ("
            << util::Table::num(cached_ips / baseline, 3)
            << "x the uncached single thread)\n";

  bench::paper_note(
      "execution-simulation gap, verifier side: answering repeated CRPs "
      "must be cheap; the cache makes repeats O(lookup) and the pool "
      "spreads fresh solves across p workers (O(n^2/p) per check).");

  // Sparse-vs-dense linear-core leg: a paper-scale flattened device.  The
  // production path solves compact models, so this leg builds the circuit
  // the compact models abstract — all 56 blocks of an n=8 challenge,
  // transistor by transistor, in one MNA system — and solves it cold
  // through both linear cores.  No prepare()/characterisation is needed:
  // the flattened netlist only consumes the variation draws.
  std::cout << "\nflattened-device MNA: sparse core vs dense oracle...\n";
  PpufParams dev_params;
  dev_params.node_count = 8;
  dev_params.grid_size = 4;
  MaxFlowPpuf device(dev_params, kFabricationSeed);
  util::Rng dev_rng(kChallengeSeed + 1);
  const Challenge dev_challenge = random_challenge(device.layout(), dev_rng);
  DeviceNetlist flat =
      build_device_netlist(dev_params, device.network_a(), dev_challenge);

  bool flat_failed = false;
  auto solve_flat = [&](bool dense, double* current) {
    circuit::DcOptions o;
    o.use_dense_solver = dense;
    const circuit::DcSolver solver(flat.netlist, o);
    const circuit::OperatingPoint op = solver.solve();
    if (!op.converged) flat_failed = true;
    *current = op.source_current(flat.drive_source);
  };
  double sparse_current = 0.0, dense_current = 0.0;
  const double sparse_seconds = bench::time_seconds_median(
      [&] { solve_flat(false, &sparse_current); }, 3);
  const double dense_seconds =
      bench::time_seconds([&] { solve_flat(true, &dense_current); });
  if (flat_failed) {
    std::cerr << "FAIL: flattened device solve did not converge\n";
    return 1;
  }
  const double core_speedup = dense_seconds / sparse_seconds;
  std::cout << "dim=" << flat.mna_dimension << ": sparse "
            << util::Table::num(sparse_seconds, 4) << " s, dense "
            << util::Table::num(dense_seconds, 4) << " s -> "
            << util::Table::num(core_speedup, 3) << "x (source currents "
            << sparse_current << " / " << dense_current << " A)\n";
  if (std::abs(sparse_current - dense_current) >
      1e-12 + 1e-6 * std::abs(dense_current)) {
    std::cerr << "FAIL: sparse and dense source currents diverged\n";
    return 1;
  }

  // Metrics-overhead leg: identical single-thread uncached batches with
  // the registry off and on.  Run disabled first so the enabled run's
  // counters describe exactly the runs in the snapshot.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.set_enabled(false);
  SimulationModel::PredictBatchOptions plain;
  plain.thread_count = 1;
  constexpr int kOverheadReps = 3;
  const double disabled_seconds = bench::time_seconds_median(
      [&] { (void)model.predict_batch(batch, plain); }, kOverheadReps);
  reg.set_enabled(true);
  obs::register_standard_metrics(reg);
  const double enabled_seconds = bench::time_seconds_median(
      [&] { (void)model.predict_batch(batch, plain); }, kOverheadReps);
  const double overhead_pct =
      (enabled_seconds / disabled_seconds - 1.0) * 100.0;
  std::cout << "metrics overhead: " << util::Table::num(overhead_pct, 2)
            << "% (" << util::Table::num(disabled_seconds, 4) << " s off, "
            << util::Table::num(enabled_seconds, 4) << " s on, median of "
            << kOverheadReps << ")\n";
  if (overhead_pct > 3.0) {
    std::cerr << "WARN: metrics overhead above the 3% budget "
              << "(noise-bound on loaded hosts; recorded, not enforced)\n";
  }
  cache.publish_metrics(reg);
  reg.write_json(metrics_path);
  reg.set_enabled(false);
  std::cout << "metrics snapshot written to " << metrics_path << "\n";

  // Per-backend fleet leg: enroll + predict throughput and the Fig. 10
  // attack accuracy for both registered backends through the same
  // registry enrollment path a heterogeneous fleet uses.  The numbers
  // tell the paper's story in one table: max-flow enrollment pays the
  // model-extraction cost and the attack stays near coin-flipping, while
  // PDL enrollment is microseconds and the attack clones the device.
  std::cout << "\nper-backend fleet leg (enroll / predict / attack)...\n";
  const std::size_t attack_small = 100;
  const std::size_t attack_large = bench::scaled(400, 200);
  const std::size_t attack_test = 100;
  const std::size_t attack_total = attack_large + attack_test;
  std::map<std::string, BackendLeg> backend_legs;
  util::Table backend_table(
      {"backend", "enrolls/s", "predicts/s",
       "attack err @" + std::to_string(attack_small),
       "attack err @" + std::to_string(attack_large)});
  for (const char* name : {"maxflow", "pdl"}) {
    const backend::PufBackend* impl = backend::find_backend(name);
    BackendLeg leg;
    const bool is_maxflow = std::string(name) == "maxflow";
    // Geometry per family: a small crossbar vs a 64-stage single chain
    // (the classic learnable baseline).
    const std::size_t nodes = is_maxflow ? 10 : 64;
    const std::size_t grid = is_maxflow ? 4 : 1;

    // Enroll throughput through the registry (fabricate + WAL append).
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("bench_backend_" + std::string(name));
    std::filesystem::remove_all(dir);
    registry::DeviceRegistry fleet;
    if (!fleet.open(dir.string()).is_ok()) {
      std::cerr << "FAIL: cannot open bench registry at " << dir << "\n";
      return 1;
    }
    const std::size_t enrolls = is_maxflow ? bench::scaled(4, 2) : 64;
    const double enroll_seconds = bench::time_seconds([&] {
      for (std::size_t i = 0; i < enrolls; ++i) {
        registry::EnrollRequest req;
        req.backend = impl->kind();
        req.node_count = nodes;
        req.grid_size = grid;
        req.seed = 9000 + i;
        req.label = "bench";
        std::uint64_t id = 0;
        if (!fleet.enroll(req, &id).is_ok()) std::abort();
      }
    });
    leg.enrolls_per_sec = static_cast<double>(enrolls) / enroll_seconds;

    // Predict throughput on one materialised device (single thread).
    backend::FabricateRequest fab;
    fab.node_count = nodes;
    fab.grid_size = grid;
    fab.seed = 9000;
    std::vector<std::uint8_t> blob;
    std::unique_ptr<backend::Device> device;
    if (!impl->fabricate(fab, nullptr, &blob).is_ok() ||
        !impl->materialize(blob, {}, &device).is_ok()) {
      std::cerr << "FAIL: " << name << " fabricate/materialize\n";
      return 1;
    }
    util::Rng leg_rng(kChallengeSeed + 11);
    std::vector<Challenge> leg_batch;
    leg_batch.reserve(attack_total);
    for (std::size_t i = 0; i < attack_total; ++i)
      leg_batch.push_back(device->issue_challenge(leg_rng));
    SimulationModel::PredictBatchOptions leg_options;
    leg_options.thread_count = 1;
    std::vector<SimulationModel::Prediction> leg_predictions;
    const double predict_seconds = bench::time_seconds([&] {
      leg_predictions = device->predict_batch(leg_batch, leg_options);
    });
    leg.predicts_per_sec =
        static_cast<double>(leg_batch.size()) / predict_seconds;

    // Attack accuracy vs N: the harness's best-of-suite error on the
    // observed CRPs.  PDL trains on parity features (the representation
    // it shares with the backend); max-flow trains on raw bits, exactly
    // like bench_fig10_model_building.
    attack::Dataset all;
    if (is_maxflow) {
      std::vector<std::vector<std::uint8_t>> bits;
      std::vector<int> responses;
      for (std::size_t i = 0; i < leg_batch.size(); ++i) {
        bits.push_back(std::vector<std::uint8_t>(
            leg_batch[i].bits.begin(), leg_batch[i].bits.end()));
        responses.push_back(leg_predictions[i].bit);
      }
      all = attack::encode_bits(bits, responses);
    } else {
      std::vector<std::vector<double>> feats;
      std::vector<int> responses;
      for (std::size_t i = 0; i < leg_batch.size(); ++i) {
        feats.push_back(
            puf::ArbiterPuf::parity_features(leg_batch[i].bits));
        responses.push_back(leg_predictions[i].bit);
      }
      all = attack::from_features(std::move(feats), std::move(responses));
    }
    const attack::Dataset train = all.slice(0, attack_large);
    const attack::Dataset test = all.slice(attack_large, attack_test);
    const auto curve = attack::attack_learning_curve(
        train, test, {attack_small, attack_large});
    if (curve.size() == 2) {
      leg.attack_error_small = curve[0].best();
      leg.attack_error_large = curve[1].best();
    }
    backend_table.add_row({name, util::Table::num(leg.enrolls_per_sec, 4),
                           util::Table::num(leg.predicts_per_sec, 4),
                           util::Table::num(leg.attack_error_small, 3),
                           util::Table::num(leg.attack_error_large, 3)});
    backend_legs[name] = leg;
    std::error_code cleanup_ec;
    std::filesystem::remove_all(dir, cleanup_ec);
  }
  backend_table.print(std::cout);
  bench::paper_note(
      "Fig. 10 economics per backend: the PDL baseline is cloned to ~100% "
      "with a few hundred CRPs while the max-flow PPUF stays near "
      "coin-flipping at the same budget — public-model security must come "
      "from the simulation gap, not model secrecy.");

  std::ofstream json(json_path);
  json << "{\n";
  json << "  \"items\": " << items << ",\n";
  json << "  \"nodes\": " << kNodes << ",\n";
  json << "  \"hardware_concurrency\": " << hw << ",\n";
  json << "  \"items_per_sec\": {";
  bool first = true;
  for (const auto& [threads, ips] : items_per_sec) {
    json << (first ? "" : ", ") << "\"" << threads << "\": " << ips;
    first = false;
  }
  json << "},\n";
  json << "  \"speedup_4_threads\": " << items_per_sec[4] / baseline << ",\n";
  json << "  \"repeated_batch_hit_rate\": " << repeat_hit_rate << ",\n";
  json << "  \"repeated_batch_items_per_sec\": " << cached_ips << ",\n";
  json << "  \"mna_dimension\": " << flat.mna_dimension << ",\n";
  json << "  \"sparse_solve_seconds\": " << sparse_seconds << ",\n";
  json << "  \"dense_solve_seconds\": " << dense_seconds << ",\n";
  json << "  \"sparse_vs_dense_speedup\": " << core_speedup << ",\n";
  json << "  \"metrics_overhead_pct\": " << overhead_pct << ",\n";
  json << "  \"backends\": {";
  first = true;
  for (const auto& [name, leg] : backend_legs) {
    json << (first ? "" : ", ") << "\"" << name << "\": {"
         << "\"enrolls_per_sec\": " << leg.enrolls_per_sec << ", "
         << "\"predicts_per_sec\": " << leg.predicts_per_sec << ", "
         << "\"attack_error_n" << attack_small
         << "\": " << leg.attack_error_small << ", "
         << "\"attack_error_n" << attack_large
         << "\": " << leg.attack_error_large << "}";
    first = false;
  }
  json << "}\n";
  json << "}\n";
  std::cout << "json written to " << json_path << "\n";

  // Exit status encodes the cache gate (always enforceable); the speedup
  // gate is meaningful only with >= 4 cores, so it is reported, not
  // enforced, on smaller hosts.
  if (repeat_hit_rate < 0.99) {
    std::cerr << "FAIL: repeated-batch hit rate below 99%\n";
    return 1;
  }
  if (hw >= 4 && items_per_sec[4] / baseline < 3.0) {
    std::cerr << "FAIL: 4-thread speedup below 3x on a >= 4 core host\n";
    return 1;
  }
  if (core_speedup < 5.0) {
    std::cerr << "FAIL: sparse linear core below 5x the dense oracle on "
              << "the flattened device (got "
              << util::Table::num(core_speedup, 3) << "x)\n";
    return 1;
  }
  return 0;
}
