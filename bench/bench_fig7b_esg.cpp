// Figure 7(b) reproduction: the execution-simulation gap
// ESG(n) = T_sim(n) - T_exe(n), extrapolated over n = 10..10^4 from
// power-law fits of measured data, with and without the feedback-loop
// technique (k = n chained challenges multiply both sides by n).
//
// The paper's headline: 1 s of ESG needs ~900 nodes without the feedback
// loop and ~190 with it.  The absolute crossovers depend on the simulator's
// machine (theirs: 2.93 GHz Xeon + boost); we report our own crossovers
// and, like the paper, the ~4-5x node-count reduction the loop buys.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "maxflow/solver.hpp"
#include "ppuf/delay.hpp"
#include "ppuf/ppuf.hpp"
#include "graph/complete.hpp"
#include "ppuf/sim_model.hpp"
#include "util/statistics.hpp"
#include "util/fit.hpp"

using namespace ppuf;

namespace {

struct EsgModel {
  util::PowerLaw sim;
  util::PowerLaw exe;

  double esg(double n, bool feedback) const {
    const double k = feedback ? n : 1.0;
    return k * (sim(n) - exe(n));
  }
};

double esg_plain(double n, const void* ctx) {
  return static_cast<const EsgModel*>(ctx)->esg(n, false);
}
double esg_feedback(double n, const void* ctx) {
  return static_cast<const EsgModel*>(ctx)->esg(n, true);
}

}  // namespace

int main() {
  util::print_banner(std::cout,
                     "Figure 7(b): ESG scaling with/without feedback loop");

  // Measure the two sides and fit power laws.  The simulation side is
  // timed out to n = 400 (instances drawn from the measured capacity
  // distribution beyond the characterised sizes, as in Fig. 7a) so the
  // extrapolation toward 10^4 nodes captures the rising exponent.
  const int reps = static_cast<int>(bench::scaled(5, 3));
  double cap_mean = 30e-9, cap_sigma = 15e-9;
  {
    PpufParams params;
    params.node_count = 40;
    params.grid_size = 8;
    MaxFlowPpuf puf(params, 7140);
    SimulationModel model(puf);
    util::RunningStats caps;
    for (graph::EdgeId e = 0; e < puf.layout().edge_count(); ++e)
      caps.add(model.capacity(0, e, 0));
    cap_mean = caps.mean();
    cap_sigma = caps.stddev();
  }
  const std::vector<std::size_t> sizes{20, 40, 60, 80, 100,
                                       150, 200, 300, 400};
  std::vector<double> ns, t_sim, t_exe;
  for (const std::size_t n : sizes) {
    util::Rng rng(n);
    const graph::Digraph g =
        graph::make_complete(n, [&](graph::VertexId, graph::VertexId) {
          return std::max(cap_mean * 0.01,
                          cap_mean + cap_sigma * rng.gaussian());
        });
    const graph::FlowProblem problem{
        &g, 0, static_cast<graph::VertexId>(n - 1)};
    const auto solver = maxflow::make_solver(maxflow::Algorithm::kPushRelabel);
    // A simulator must solve both networks.
    ns.push_back(static_cast<double>(n));
    t_sim.push_back(
        2.0 * bench::time_seconds_median([&] { solver->solve(problem); },
                                         reps));
    t_exe.push_back(analytic_delay_bound(PpufParams{}, n));
  }
  EsgModel model{util::fit_power_law(ns, t_sim),
                 util::fit_power_law(ns, t_exe)};
  std::cout << "fit: T_sim ~ " << model.sim.to_string() << " s, T_exe ~ "
            << model.exe.to_string() << " s\n\n";

  util::Table t({"nodes", "ESG no loop [s]", "ESG with loop k=n [s]"});
  for (double n = 10.0; n <= 10000.0 * 1.001; n *= std::sqrt(10.0)) {
    t.add_row({std::to_string(static_cast<long>(n + 0.5)),
               util::Table::sci(model.esg(n, false)),
               util::Table::sci(model.esg(n, true))});
  }
  t.print(std::cout);

  const double n_plain =
      util::solve_monotone(esg_plain, &model, 1.0, 10.0, 1e7);
  const double n_loop =
      util::solve_monotone(esg_feedback, &model, 1.0, 10.0, 1e7);
  std::cout << "\nnodes needed for 1 s ESG:  without loop "
            << util::Table::num(n_plain, 0) << ",  with loop "
            << util::Table::num(n_loop, 0) << "  (reduction "
            << util::Table::num(n_plain / n_loop, 1) << "x)\n";
  bench::paper_note(
      "900 nodes without / 190 with the feedback loop on the paper's "
      "testbed — a ~4.7x reduction; the reduction factor is the "
      "machine-independent part of the claim.");
  return 0;
}
