// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>

#include "util/table.hpp"

namespace ppuf::bench {

/// Scales a default sample count by PPUF_BENCH_SCALE (>= minimum 1).
inline std::size_t scaled(std::size_t base, std::size_t minimum = 1) {
  const double s = util::bench_scale();
  return std::max<std::size_t>(minimum,
                               static_cast<std::size_t>(base * s + 0.5));
}

/// Wall-clock seconds of a callable.
template <typename F>
double time_seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Median-of-repetitions wall-clock timing for noisy fast operations.
template <typename F>
double time_seconds_median(F&& f, int repetitions) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) samples.push_back(time_seconds(f));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(
                                         samples.size() / 2),
                   samples.end());
  return samples[samples.size() / 2];
}

inline void paper_note(const std::string& note) {
  std::cout << "paper: " << note << "\n";
}

}  // namespace ppuf::bench
