// Section 4.2 reproduction: the challenge-response space bound
//   N_CRP >= n(n-1) * 2^(l^2) / sum_{i<d} C(l^2, i),
// evaluated exactly with arbitrary-precision integers, plus a greedy
// minimum-distance code construction demonstrating the admissible type-B
// subset is practically samplable.
#include <iostream>

#include "bench_common.hpp"
#include "ppuf/code.hpp"
#include "util/table.hpp"

using namespace ppuf;

int main() {
  util::print_banner(std::cout, "Section 4.2: CRP space lower bound");

  util::Table t({"n", "l", "d", "N_CRP lower bound (exact)",
                 "~ scientific"});
  struct Case {
    std::size_t n, l, d;
  };
  for (const Case c : {Case{40, 8, 16}, Case{100, 8, 16}, Case{200, 15, 30},
                       Case{400, 20, 40}}) {
    const util::BigUint bound = crp_space_lower_bound(c.n, c.l, c.d);
    std::string dec = bound.to_decimal();
    std::string shown = dec.size() <= 24 ? dec
                                         : dec.substr(0, 20) + "...(" +
                                               std::to_string(dec.size()) +
                                               " digits)";
    t.add_row({std::to_string(c.n), std::to_string(c.l), std::to_string(c.d),
               shown, util::Table::sci(bound.to_double(), 3)});
  }
  t.print(std::cout);
  bench::paper_note(
      "n = 200, l = 15, d = 2l gives N_CRP >= 6.53e35 — our exact "
      "evaluation reproduces that value.");

  util::print_banner(std::cout,
                     "Greedy minimum-distance code for l = 8, d = 16");
  util::Rng rng(3);
  const auto code = build_min_distance_code(64, 16, bench::scaled(200, 100),
                                            rng, 200000);
  std::cout << "constructed " << code.size()
            << " codewords of length 64 with pairwise distance >= 16 "
            << "(validated: " << (check_min_distance(code, 16) ? "yes" : "NO")
            << ")\n";
  std::cout << "(the Gilbert-Varshamov bound guarantees ~"
            << util::Table::sci(type_b_space_lower_bound(8, 16).to_double(),
                                2)
            << " codewords exist; the verifier only ever needs to sample "
               "them lazily.)\n";
  return 0;
}
