// Loopback load test of the authentication service (DESIGN.md §12).
//
// Three legs, all against in-process AuthServer instances on 127.0.0.1:
//
//   1. Load: K = 4 concurrent AuthClients each issue R PREDICT requests
//      (every one is two max-flow solves server-side), then one full
//      CHALLENGE -> chained-proof -> CHAINED_AUTH round as the honest
//      device holder.  Reports items/s and exact (not bucketed) p50/p95/
//      p99 request latency.
//   2. Deadline: a raw-socket request whose budget_ms expires inside the
//      server's work must come back as a *typed* DEADLINE_EXCEEDED error
//      reply — and the connection must survive to serve the next request.
//   3. Overload: three pipelined requests against a max_inflight=1,
//      single-worker server; the admission bound must answer the excess
//      with typed OVERLOADED replies while the first request completes
//      normally, all on one connection.
//   4. Registry: a multi-tenant server fronting an on-disk DeviceRegistry;
//      the first request per device pays the hydration cost (WAL decode +
//      model materialisation), later ones hit the LRU cache.  Reports
//      cold vs warm request latency.
//   5. Coalescing: 64 pipelined connections against coalesce-off vs
//      coalesce-on servers (the on-server also runs the device-keyed
//      response cache, which per-frame dispatch never reads — that IS the
//      uncached baseline).  Gate: >= 2x items/s.  Also sweeps
//      coalesce_max_batch in {1, 4, 16, 32} for a batch-size-vs-p99
//      curve, and soaks a coalescing server under thousands of
//      simultaneously open connections (clamped to RLIMIT_NOFILE).
//   6. Fleet: the same predict load pushed through the fleet gateway over
//      1 / 2 / 4 registry shards (items/s and p50/p99 per shard count,
//      enrollment routed by the gateway itself), then a kill-a-shard leg:
//      a shard dies, its WAL-shipping standby promotes, the gateway shard
//      name is re-pointed at the promoted server, and the window from
//      kill to the first successful forward is the recovery time — with
//      zero acked enrollments lost.
//   7. Large registry: a synthesized >= 100k-device registry (bulk
//      snapshot plus a record-framed WAL tail, every device sharing one
//      tiny model blob — the leg measures recovery and hydration
//      mechanics, not solver cost), cold open() recovery time, and the
//      hydration hit-ratio curve vs cache capacity under a fixed working
//      set.
//
// Results land in a JSON file (argv[1], default BENCH_server.json) so CI
// can archive the trend; the exit status encodes the acceptance gates
// (every load request served, chained auth accepted, both typed-error
// legs behaving).
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fleet/gateway.hpp"
#include "fleet/standby.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "protocol/authentication.hpp"
#include "protocol/codec.hpp"
#include "registry/device_registry.hpp"
#include "registry/hydration_cache.hpp"
#include "registry/record.hpp"
#include "server/auth_server.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ppuf;

constexpr std::size_t kNodes = 24;
constexpr std::size_t kGrid = 6;
constexpr std::uint64_t kFabricationSeed = 2026;
constexpr unsigned kClients = 4;  ///< acceptance floor: >= 4 concurrent
constexpr double kChipDelaySeconds = 1e-6;

/// Exact percentile of a sorted sample (nearest-rank).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::max<std::size_t>(1, rank) - 1];
}

/// Read one whole frame from a raw blocking socket.
util::Status read_frame(int fd, const util::Deadline& deadline,
                        net::Frame* out) {
  std::vector<std::uint8_t> buf(net::kHeaderSize);
  if (util::Status s =
          net::recv_exact(fd, buf.data(), buf.size(), deadline);
      !s.is_ok())
    return s;
  // payload_len lives in the last 4 header bytes (little-endian).
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(buf[28]) |
      static_cast<std::uint32_t>(buf[29]) << 8 |
      static_cast<std::uint32_t>(buf[30]) << 16 |
      static_cast<std::uint32_t>(buf[31]) << 24;
  if (payload_len > net::kMaxPayload)
    return util::Status::internal("oversized reply payload");
  buf.resize(net::kHeaderSize + payload_len);
  if (payload_len > 0) {
    if (util::Status s = net::recv_exact(fd, buf.data() + net::kHeaderSize,
                                         payload_len, deadline);
        !s.is_ok())
      return s;
  }
  std::size_t consumed = 0;
  if (net::decode_frame(buf.data(), buf.size(), out, &consumed) !=
      net::DecodeResult::kOk)
    return util::Status::internal("unparseable reply frame");
  return util::Status::ok();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_server.json";
  const std::size_t requests_per_client = bench::scaled(30, 8);

  std::cout << "fabricating n=" << kNodes << " instance and extracting the "
            << "public model...\n";
  PpufParams params;
  params.node_count = kNodes;
  params.grid_size = kGrid;
  MaxFlowPpuf puf(params, kFabricationSeed);
  SimulationModel model(puf);

  const unsigned hw = util::ThreadPool::default_thread_count();

  // --- leg 1: concurrent predict load + one chained auth per client -------
  server::AuthServerOptions so;
  so.threads = std::max(2u, std::min(hw, 8u));
  so.max_inflight = 256;
  so.chain_length = 3;
  so.spot_checks = 2;
  server::AuthServer srv(model, so);
  if (util::Status s = srv.start(); !s.is_ok()) {
    std::cerr << "FATAL: server start failed: " << s.to_string() << "\n";
    return 1;
  }
  std::cout << "server on 127.0.0.1:" << srv.port() << " ("
            << so.threads << " workers), " << kClients << " clients x "
            << requests_per_client << " predicts\n";

  std::vector<std::vector<double>> latencies(kClients);
  std::vector<std::size_t> failures(kClients, 0);
  std::vector<std::size_t> chained_ok(kClients, 0);
  std::vector<double> predict_seconds(kClients, 0.0);
  // Chip execution mutates solver state, so each client gets its own
  // (seed-identical) instance — fabricated before the clock starts, since
  // fabrication is device-owner setup, not serving load.
  std::vector<std::unique_ptr<MaxFlowPpuf>> chips;
  for (unsigned k = 0; k < kClients; ++k)
    chips.push_back(std::make_unique<MaxFlowPpuf>(params, kFabricationSeed));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (unsigned k = 0; k < kClients; ++k) {
    threads.emplace_back([&, k] {
      net::AuthClient client("127.0.0.1", srv.port());
      util::Rng rng(100 + k);
      latencies[k].reserve(requests_per_client);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        const Challenge c = random_challenge(model.layout(), rng);
        SimulationModel::Prediction p;
        const auto r0 = std::chrono::steady_clock::now();
        const util::Status s = client.predict(c, &p);
        const double us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - r0)
                .count();
        if (s.is_ok())
          latencies[k].push_back(us);
        else
          ++failures[k];
      }
      // Throughput window ends here; the chained round below exercises the
      // protocol end to end but its chip-side Newton solves are holder
      // work, not server load.
      predict_seconds[k] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      // Full honest-holder round: grant -> chip execution -> verdict.
      net::ChallengeGrant grant;
      protocol::ChainedVerifyResult verdict;
      if (client.get_challenge(&grant).is_ok()) {
        const protocol::ChainedReport report =
            protocol::prove_chain_with_ppuf(*chips[k], grant.challenge,
                                            grant.chain_length, grant.nonce,
                                            kChipDelaySeconds);
        if (client.chained_auth(grant, report, &verdict).is_ok() &&
            verdict.accepted)
          chained_ok[k] = 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double load_seconds =
      *std::max_element(predict_seconds.begin(), predict_seconds.end());

  std::vector<double> merged;
  std::size_t total_failures = 0, chained_accepted = 0;
  for (unsigned k = 0; k < kClients; ++k) {
    merged.insert(merged.end(), latencies[k].begin(), latencies[k].end());
    total_failures += failures[k];
    chained_accepted += chained_ok[k];
  }
  std::sort(merged.begin(), merged.end());
  const std::size_t items = merged.size();
  const double items_per_sec = static_cast<double>(items) / load_seconds;
  const double p50 = percentile(merged, 0.50);
  const double p95 = percentile(merged, 0.95);
  const double p99 = percentile(merged, 0.99);

  util::Table table({"clients", "items/s", "p50 us", "p95 us", "p99 us"});
  table.add_row({std::to_string(kClients), util::Table::num(items_per_sec, 4),
                 util::Table::num(p50, 1), util::Table::num(p95, 1),
                 util::Table::num(p99, 1)});
  table.print(std::cout);
  std::cout << items << " predicts served in "
            << util::Table::num(load_seconds, 3) << " s, " << total_failures
            << " failures, " << chained_accepted << "/" << kClients
            << " chained auths accepted\n";

  // --- leg 2: typed DEADLINE_EXCEEDED on the same (surviving) connection --
  bool deadline_typed = false, connection_survived = false;
  {
    net::Socket sock;
    if (util::Status s =
            net::connect_tcp("127.0.0.1", srv.port(), 2000, &sock);
        !s.is_ok()) {
      std::cerr << "FATAL: deadline-leg connect failed: " << s.to_string()
                << "\n";
      return 1;
    }
    const util::Deadline io = util::Deadline::after_seconds(5.0);
    // budget_ms = 25 but the ping asks to be held 2000 ms: the budget
    // expires inside the handler, which must answer typed, not hang.
    const std::vector<std::uint8_t> request = net::encode_frame(
        net::MessageType::kPingRequest, 777, net::kDefaultDeviceId, 25,
        net::encode_ping_request(2000));
    net::Frame reply;
    if (net::send_all(sock.fd(), request.data(), request.size(), io)
            .is_ok() &&
        read_frame(sock.fd(), io, &reply).is_ok() &&
        reply.type == net::MessageType::kErrorReply &&
        reply.request_id == 777) {
      net::ErrorReply err;
      deadline_typed = net::decode_error_reply(reply.payload, &err).is_ok() &&
                       err.code == net::WireCode::kDeadlineExceeded;
    }
    // The connection must still be serviceable after the typed error.
    const std::vector<std::uint8_t> followup = net::encode_frame(
        net::MessageType::kPingRequest, 778, net::kDefaultDeviceId, 0,
        net::encode_ping_request(0));
    net::Frame reply2;
    connection_survived =
        net::send_all(sock.fd(), followup.data(), followup.size(), io)
            .is_ok() &&
        read_frame(sock.fd(), io, &reply2).is_ok() &&
        reply2.type == net::MessageType::kPingReply &&
        reply2.request_id == 778;
  }
  std::cout << "deadline leg: typed reply " << (deadline_typed ? "yes" : "NO")
            << ", connection survived "
            << (connection_survived ? "yes" : "NO") << "\n";
  srv.stop();

  // --- leg 3: typed OVERLOADED past the admission bound -------------------
  std::size_t overloaded_replies = 0, served_under_overload = 0;
  std::uint64_t server_overload_count = 0;
  {
    server::AuthServerOptions tiny;
    tiny.threads = 1;
    tiny.max_inflight = 1;
    server::AuthServer small(model, tiny);
    if (util::Status s = small.start(); !s.is_ok()) {
      std::cerr << "FATAL: overload-leg server start failed: "
                << s.to_string() << "\n";
      return 1;
    }
    net::Socket sock;
    if (util::Status s =
            net::connect_tcp("127.0.0.1", small.port(), 2000, &sock);
        !s.is_ok()) {
      std::cerr << "FATAL: overload-leg connect failed: " << s.to_string()
                << "\n";
      return 1;
    }
    // Three requests in one write: the first occupies the only worker for
    // 300 ms, so the loop must reject the other two at admission — without
    // blocking the acceptor or dropping the connection.
    std::vector<std::uint8_t> burst;
    for (std::uint64_t id = 1; id <= 3; ++id) {
      const std::vector<std::uint8_t> f = net::encode_frame(
          net::MessageType::kPingRequest, id, net::kDefaultDeviceId, 0,
          net::encode_ping_request(300));
      burst.insert(burst.end(), f.begin(), f.end());
    }
    const util::Deadline io = util::Deadline::after_seconds(10.0);
    if (!net::send_all(sock.fd(), burst.data(), burst.size(), io).is_ok()) {
      std::cerr << "FATAL: overload-leg send failed\n";
      return 1;
    }
    for (int i = 0; i < 3; ++i) {
      net::Frame reply;
      if (!read_frame(sock.fd(), io, &reply).is_ok()) break;
      if (reply.type == net::MessageType::kPingReply) {
        ++served_under_overload;
      } else if (reply.type == net::MessageType::kErrorReply) {
        net::ErrorReply err;
        if (net::decode_error_reply(reply.payload, &err).is_ok() &&
            err.code == net::WireCode::kOverloaded)
          ++overloaded_replies;
      }
    }
    small.stop();
    server_overload_count = small.stats().overloaded_rejections;
  }
  std::cout << "overload leg: " << overloaded_replies
            << " typed OVERLOADED replies, " << served_under_overload
            << " served (server counted " << server_overload_count << ")\n";

  // --- leg 4: registry hydration — cold materialisation vs warm cache ----
  constexpr std::size_t kRegistryDevices = 3;
  double registry_cold_us = 0.0, registry_warm_us = 0.0;
  std::size_t registry_failures = 0;
  {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ppuf_bench_registry";
    std::filesystem::remove_all(dir);
    registry::DeviceRegistry reg;
    if (util::Status s = reg.open(dir.string()); !s.is_ok()) {
      std::cerr << "FATAL: registry open failed: " << s.to_string() << "\n";
      return 1;
    }
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < kRegistryDevices; ++i) {
      registry::EnrollRequest req;
      req.node_count = kNodes;
      req.grid_size = kGrid;
      req.seed = kFabricationSeed + 1 + i;
      req.label = "bench";
      std::uint64_t id = 0;
      if (util::Status s = reg.enroll(req, &id); !s.is_ok()) {
        std::cerr << "FATAL: enroll failed: " << s.to_string() << "\n";
        return 1;
      }
      ids.push_back(id);
    }
    server::AuthServerOptions ro;
    ro.threads = 2;
    server::AuthServer rsrv(reg, ro);
    if (util::Status s = rsrv.start(); !s.is_ok()) {
      std::cerr << "FATAL: registry server start failed: " << s.to_string()
                << "\n";
      return 1;
    }
    util::Rng rng(9);
    const Challenge c = random_challenge(model.layout(), rng);
    // Two passes per device on one client each: the first predict pays the
    // hydration miss (registry lookup + model materialisation + verifier
    // build), the second hits the LRU.  Averages over devices.
    const auto timed_predict = [&](net::AuthClient& client, double* acc) {
      SimulationModel::Prediction p;
      const auto r0 = std::chrono::steady_clock::now();
      const util::Status s = client.predict(c, &p);
      *acc += std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - r0)
                  .count();
      if (!s.is_ok()) ++registry_failures;
    };
    std::vector<std::unique_ptr<net::AuthClient>> clients;
    for (std::uint64_t id : ids) {
      net::ClientOptions co;
      co.device_id = id;
      clients.push_back(std::make_unique<net::AuthClient>(
          "127.0.0.1", rsrv.port(), co));
    }
    for (auto& client : clients) timed_predict(*client, &registry_cold_us);
    for (auto& client : clients) timed_predict(*client, &registry_warm_us);
    registry_cold_us /= static_cast<double>(kRegistryDevices);
    registry_warm_us /= static_cast<double>(kRegistryDevices);
    rsrv.stop();
    std::filesystem::remove_all(dir);
  }
  std::cout << "registry leg: cold " << util::Table::num(registry_cold_us, 1)
            << " us vs warm " << util::Table::num(registry_warm_us, 1)
            << " us per predict (" << kRegistryDevices << " devices, "
            << registry_failures << " failures)\n";

  // --- leg 5: cross-connection coalescing — throughput, p99 curve, soak --
  struct CoalesceRun {
    double items_per_sec = 0.0;
    double p99_window_us = 0.0;  ///< per depth-8 pipelined window
    std::size_t failures = 0;
    std::uint64_t coalesced_batches = 0;
    std::uint64_t coalesced_items = 0;
  };
  constexpr unsigned kCoalesceConnections = 64;
  constexpr int kPipelineDepth = 8;
  const std::size_t per_connection = bench::scaled(16, 8);
  // A small shared challenge pool: with coalescing on, repeats are
  // answered from the device-keyed response cache without a solve.
  std::vector<Challenge> pool;
  {
    util::Rng rng(77);
    for (int i = 0; i < 16; ++i)
      pool.push_back(random_challenge(model.layout(), rng));
  }
  const auto run_coalesce_leg = [&](std::size_t max_batch) {
    CoalesceRun run;
    server::AuthServerOptions co;
    co.threads = so.threads;
    co.max_inflight = 4096;  // admission must not throttle the pipeline
    co.coalesce_max_batch = max_batch;
    co.coalesce_wait_us = 200;
    co.response_cache_bytes =
        max_batch > 1 ? std::size_t{64} << 20 : std::size_t{0};
    server::AuthServer csrv(model, co);
    if (util::Status s = csrv.start(); !s.is_ok()) {
      std::cerr << "FATAL: coalescing server start failed: " << s.to_string()
                << "\n";
      run.failures = kCoalesceConnections * per_connection;
      return run;
    }
    std::vector<std::vector<double>> window_us(kCoalesceConnections);
    std::vector<std::size_t> fails(kCoalesceConnections, 0);
    std::vector<std::thread> conns;
    conns.reserve(kCoalesceConnections);
    const auto c0 = std::chrono::steady_clock::now();
    for (unsigned k = 0; k < kCoalesceConnections; ++k) {
      conns.emplace_back([&, k] {
        net::ClientOptions copts;
        copts.pipeline_depth = kPipelineDepth;
        net::AuthClient client("127.0.0.1", csrv.port(), copts);
        std::vector<Challenge> window;
        std::vector<SimulationModel::Prediction> out;
        for (std::size_t start = 0; start < per_connection;
             start += kPipelineDepth) {
          window.clear();
          const std::size_t end = std::min(
              per_connection, start + static_cast<std::size_t>(kPipelineDepth));
          // Rotate the pool per connection so batches mix cache hits and
          // genuine solves in different orders across the fleet.
          for (std::size_t j = start; j < end; ++j)
            window.push_back(pool[(j + k) % pool.size()]);
          const auto w0 = std::chrono::steady_clock::now();
          const util::Status s = client.predict_pipelined(window, &out);
          const double us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - w0)
                                .count();
          if (!s.is_ok()) {
            fails[k] += window.size();
            continue;
          }
          window_us[k].push_back(us);
          for (const SimulationModel::Prediction& p : out)
            if (!p.ok()) ++fails[k];
        }
      });
    }
    for (std::thread& t : conns) t.join();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - c0)
                               .count();
    std::vector<double> merged_windows;
    for (unsigned k = 0; k < kCoalesceConnections; ++k) {
      merged_windows.insert(merged_windows.end(), window_us[k].begin(),
                            window_us[k].end());
      run.failures += fails[k];
    }
    std::sort(merged_windows.begin(), merged_windows.end());
    const std::size_t total = kCoalesceConnections * per_connection;
    run.items_per_sec =
        static_cast<double>(total - run.failures) / seconds;
    run.p99_window_us = percentile(merged_windows, 0.99);
    const server::AuthServer::Stats cstats = csrv.stats();
    run.coalesced_batches = cstats.coalesced_batches;
    run.coalesced_items = cstats.coalesced_items;
    csrv.stop();
    return run;
  };

  const std::size_t batch_sweep[] = {1, 4, 16, 32};
  std::vector<CoalesceRun> curve;
  util::Table ctable({"max_batch", "items/s", "p99 window us",
                      "batches", "batched items", "failures"});
  for (const std::size_t b : batch_sweep) {
    curve.push_back(run_coalesce_leg(b));
    const CoalesceRun& r = curve.back();
    ctable.add_row({std::to_string(b), util::Table::num(r.items_per_sec, 4),
                    util::Table::num(r.p99_window_us, 1),
                    std::to_string(r.coalesced_batches),
                    std::to_string(r.coalesced_items),
                    std::to_string(r.failures)});
  }
  ctable.print(std::cout);
  const double coalesce_speedup =
      curve[0].items_per_sec > 0.0
          ? curve[2].items_per_sec / curve[0].items_per_sec
          : 0.0;
  std::size_t coalesce_failures = 0;
  for (const CoalesceRun& r : curve) coalesce_failures += r.failures;
  std::cout << "coalescing leg: " << kCoalesceConnections
            << " pipelined connections, batch 16 vs per-frame speedup "
            << util::Table::num(coalesce_speedup, 2) << "x\n";

  // Soak: thousands of simultaneously open connections (clamped to the
  // process fd limit), each served one ping and held open, then a final
  // liveness probe while they all still sit in the epoll set.
  std::size_t soak_target = 10000, soak_served = 0;
  double soak_seconds = 0.0;
  bool soak_live = false;
  {
    struct rlimit rl{};
    if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY)
      soak_target = std::min<std::size_t>(
          soak_target,
          rl.rlim_cur > 512 ? static_cast<std::size_t>(rl.rlim_cur - 256) / 2
                            : 64);
    server::AuthServerOptions sopt;
    sopt.threads = 2;
    sopt.coalesce_max_batch = 16;
    sopt.coalesce_wait_us = 200;
    sopt.response_cache_bytes = std::size_t{16} << 20;
    server::AuthServer ssrv(model, sopt);
    if (util::Status s = ssrv.start(); !s.is_ok()) {
      std::cerr << "FATAL: soak server start failed: " << s.to_string()
                << "\n";
      return 1;
    }
    const util::Deadline io = util::Deadline::after_seconds(60.0);
    std::vector<net::Socket> open_conns;
    open_conns.reserve(soak_target);
    const auto s0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < soak_target; ++i) {
      net::Socket sock;
      if (!net::connect_tcp("127.0.0.1", ssrv.port(), 2000, &sock).is_ok())
        break;
      const std::vector<std::uint8_t> f = net::encode_frame(
          net::MessageType::kPingRequest, i + 1, net::kDefaultDeviceId, 0,
          net::encode_ping_request(0));
      net::Frame reply;
      if (net::send_all(sock.fd(), f.data(), f.size(), io).is_ok() &&
          read_frame(sock.fd(), io, &reply).is_ok() &&
          reply.type == net::MessageType::kPingReply)
        ++soak_served;
      open_conns.push_back(std::move(sock));
    }
    net::AuthClient probe("127.0.0.1", ssrv.port());
    soak_live = probe.ping().is_ok();
    soak_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - s0)
                       .count();
    open_conns.clear();
    ssrv.stop();
  }
  std::cout << "soak: " << soak_served << "/" << soak_target
            << " connections served and held open in "
            << util::Table::num(soak_seconds, 2) << " s, liveness probe "
            << (soak_live ? "ok" : "FAILED") << "\n";

  // --- leg 6: fleet — gateway scaling across shards, then shard loss ------
  constexpr std::size_t kFleetNodes = 16;
  constexpr std::size_t kFleetGrid = 4;
  constexpr std::uint64_t kFleetSeedBase = 7100;
  constexpr std::size_t kFleetDevices = 8;  ///< one loader client per device
  const std::size_t fleet_requests_per_device = bench::scaled(12, 4);

  // Every fleet device shares one geometry, so one locally fabricated
  // model provides the layout challenge sampling needs.
  PpufParams fleet_params;
  fleet_params.node_count = kFleetNodes;
  fleet_params.grid_size = kFleetGrid;
  MaxFlowPpuf fleet_reference(fleet_params, kFleetSeedBase);
  SimulationModel fleet_layout(fleet_reference);
  std::vector<Challenge> fleet_pool;
  {
    util::Rng rng(501);
    for (int i = 0; i < 16; ++i)
      fleet_pool.push_back(random_challenge(fleet_layout.layout(), rng));
  }

  struct FleetRun {
    std::size_t shards = 0;
    double items_per_sec = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    std::size_t failures = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t dropped_inflight = 0;
    bool ok = false;  ///< setup + enrollment clean, zero failed predicts
  };

  /// One fleet shard: its own on-disk registry behind its own AuthServer.
  struct FleetShard {
    std::filesystem::path dir;
    std::unique_ptr<registry::DeviceRegistry> registry;
    std::unique_ptr<server::AuthServer> server;
  };
  const auto open_fleet_shard = [](const std::string& name,
                                   std::uint64_t challenge_seed,
                                   FleetShard* s) {
    s->dir = std::filesystem::temp_directory_path() / ("ppuf_bench_" + name);
    std::filesystem::remove_all(s->dir);
    s->registry = std::make_unique<registry::DeviceRegistry>();
    if (!s->registry->open(s->dir.string()).is_ok()) return false;
    server::AuthServerOptions o;
    o.threads = 2;
    o.spot_checks = 0;
    o.challenge_seed = challenge_seed;
    s->server = std::make_unique<server::AuthServer>(*s->registry, o);
    if (!s->server->start().is_ok()) {
      s->server.reset();
      return false;
    }
    return true;
  };
  const auto close_fleet_shards = [](std::vector<FleetShard>& shards) {
    for (FleetShard& s : shards) {
      if (s.server) s.server->stop();
      std::filesystem::remove_all(s.dir);
    }
  };
  /// The health prober needs one probe round trip before routing opens.
  const auto fleet_wait_up = [](net::AuthClient& admin,
                                std::size_t expected) {
    for (int i = 0; i < 400; ++i) {
      net::AdminRequestBody req;
      req.op = net::AdminOp::kStatus;
      net::AdminReplyBody reply;
      if (admin.admin(req, &reply).is_ok() &&
          reply.shards.size() == expected) {
        std::size_t up = 0;
        for (const net::ShardStatus& s : reply.shards)
          if (s.state == static_cast<std::uint8_t>(fleet::ShardState::kUp))
            ++up;
        if (up == expected) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
  };
  /// Enroll ids 1..kFleetDevices THROUGH the gateway (explicit ids: the
  /// id a client hashes on is the id the owning shard stores).
  const auto fleet_enroll_all = [&](std::uint16_t gateway_port) {
    for (std::uint64_t id = 1; id <= kFleetDevices; ++id) {
      net::ClientOptions co;
      co.device_id = id;
      co.backoff_seed = 1;
      net::AuthClient c("127.0.0.1", gateway_port, co);
      net::EnrollRequestBody spec;
      spec.node_count = kFleetNodes;
      spec.grid_size = kFleetGrid;
      spec.fabrication_seed = kFleetSeedBase + id;
      spec.label = "bench-fleet";
      std::uint64_t assigned = 0;
      if (!c.enroll_device(spec, id, &assigned).is_ok() || assigned != id)
        return false;
    }
    return true;
  };

  const auto run_fleet_leg = [&](std::size_t shard_count) {
    FleetRun run;
    run.shards = shard_count;
    std::vector<FleetShard> shards(shard_count);
    bool up = true;
    for (std::size_t i = 0; i < shard_count; ++i)
      up = up && open_fleet_shard("fleet_s" + std::to_string(shard_count) +
                                      "_" + std::to_string(i),
                                  1000 + 10 * shard_count + i, &shards[i]);
    fleet::GatewayOptions go;
    go.threads = 4;
    go.health_interval_ms = 50;
    fleet::Gateway gateway(go);
    for (std::size_t i = 0; i < shard_count && up; ++i)
      up = gateway
               .add_shard("s" + std::to_string(i), "127.0.0.1",
                          shards[i].server->port())
               .is_ok();
    up = up && gateway.start().is_ok();
    if (up) {
      net::AuthClient admin("127.0.0.1", gateway.port());
      up = fleet_wait_up(admin, shard_count) &&
           fleet_enroll_all(gateway.port());
    }
    if (!up) {
      std::cerr << "FATAL: fleet leg setup failed (shards=" << shard_count
                << ")\n";
      run.failures = kFleetDevices * fleet_requests_per_device;
      close_fleet_shards(shards);
      return run;
    }
    std::vector<std::vector<double>> lat(kFleetDevices);
    std::vector<std::size_t> fails(kFleetDevices, 0);
    std::vector<std::thread> loaders;
    loaders.reserve(kFleetDevices);
    const auto f0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < kFleetDevices; ++k) {
      loaders.emplace_back([&, k] {
        net::ClientOptions co;
        co.device_id = k + 1;
        co.backoff_seed = 2 + k;
        net::AuthClient client("127.0.0.1", gateway.port(), co);
        lat[k].reserve(fleet_requests_per_device);
        for (std::size_t i = 0; i < fleet_requests_per_device; ++i) {
          const Challenge& c = fleet_pool[(i + 3 * k) % fleet_pool.size()];
          SimulationModel::Prediction p;
          const auto r0 = std::chrono::steady_clock::now();
          if (client.predict(c, &p).is_ok())
            lat[k].push_back(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - r0)
                                 .count());
          else
            ++fails[k];
        }
      });
    }
    for (std::thread& t : loaders) t.join();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - f0)
                               .count();
    std::vector<double> merged_lat;
    for (std::size_t k = 0; k < kFleetDevices; ++k) {
      merged_lat.insert(merged_lat.end(), lat[k].begin(), lat[k].end());
      run.failures += fails[k];
    }
    std::sort(merged_lat.begin(), merged_lat.end());
    run.items_per_sec = static_cast<double>(merged_lat.size()) / seconds;
    run.p50_us = percentile(merged_lat, 0.50);
    run.p99_us = percentile(merged_lat, 0.99);
    const fleet::Gateway::Stats gs = gateway.stats();
    run.forwarded = gs.forwarded;
    run.dropped_inflight = gs.dropped_inflight;
    gateway.stop();
    close_fleet_shards(shards);
    run.ok = run.failures == 0 && run.dropped_inflight == 0;
    return run;
  };

  const std::size_t fleet_shard_counts[] = {1, 2, 4};
  std::vector<FleetRun> fleet_runs;
  util::Table ftable({"shards", "items/s", "p50 us", "p99 us", "forwarded",
                      "dropped", "failures"});
  for (const std::size_t s : fleet_shard_counts) {
    fleet_runs.push_back(run_fleet_leg(s));
    const FleetRun& r = fleet_runs.back();
    ftable.add_row({std::to_string(r.shards),
                    util::Table::num(r.items_per_sec, 4),
                    util::Table::num(r.p50_us, 1),
                    util::Table::num(r.p99_us, 1),
                    std::to_string(r.forwarded),
                    std::to_string(r.dropped_inflight),
                    std::to_string(r.failures)});
  }
  ftable.print(std::cout);
  std::cout << "fleet leg: " << kFleetDevices << " devices x "
            << fleet_requests_per_device
            << " predicts through the gateway per shard count\n";

  // Kill-a-shard recovery: a 2-shard fleet with a WAL-shipping standby on
  // shard s0.  The shard dies, the standby promotes, the gateway's shard
  // name is re-pointed at the promoted server (ring placement is
  // name-keyed: no device moves), and the window from kill to the first
  // successful forward is the recovery time.  Every enrollment the dead
  // shard acked must still answer afterwards.
  double fleet_recovery_ms = -1.0;
  std::size_t fleet_recovery_devices = 0, fleet_recovery_lost = 0;
  bool fleet_recovery_ok = false;
  {
    std::vector<FleetShard> shards(2);
    bool up = open_fleet_shard("fleet_failover_0", 2000, &shards[0]) &&
              open_fleet_shard("fleet_failover_1", 2001, &shards[1]);
    fleet::GatewayOptions go;
    go.threads = 4;
    go.health_interval_ms = 50;
    fleet::Gateway gateway(go);
    up = up &&
         gateway.add_shard("s0", "127.0.0.1", shards[0].server->port())
             .is_ok() &&
         gateway.add_shard("s1", "127.0.0.1", shards[1].server->port())
             .is_ok() &&
         gateway.start().is_ok();
    if (up) {
      net::AuthClient admin("127.0.0.1", gateway.port());
      up = fleet_wait_up(admin, 2) && fleet_enroll_all(gateway.port());
    }
    std::vector<std::uint64_t> owned;
    if (up)
      for (std::uint64_t id = 1; id <= kFleetDevices; ++id)
        if (shards[0].registry->contains(id)) owned.push_back(id);
    fleet_recovery_devices = owned.size();
    up = up && !owned.empty();
    if (up) {
      const std::filesystem::path standby_dir =
          std::filesystem::temp_directory_path() /
          "ppuf_bench_fleet_standby";
      std::filesystem::remove_all(standby_dir);
      fleet::StandbyOptions sbo;
      sbo.primary_port = shards[0].server->port();
      sbo.directory = standby_dir.string();
      fleet::WalStandby standby(sbo);
      up = standby.start().is_ok();
      // Quiesce the poll thread: the catch-up pass below is explicit, so
      // "caught up" is a deterministic fact, not a race with the kill.
      standby.stop();
      up = up && standby.sync_once().is_ok();
      // Kill the primary; the clock runs from here to the first
      // successful forward after the re-point.
      const auto k0 = std::chrono::steady_clock::now();
      shards[0].server->stop();
      const fleet::PromotionReport report = standby.promote();
      server::AuthServerOptions po;
      po.threads = 2;
      po.spot_checks = 0;
      po.challenge_seed = 2002;
      server::AuthServer promoted(standby.registry(), po);
      up = up && report.caught_up && promoted.start().is_ok();
      if (up) {
        net::AuthClient admin("127.0.0.1", gateway.port());
        net::AdminRequestBody req;
        req.op = net::AdminOp::kAddShard;
        req.shard = "s0";
        req.host = "127.0.0.1";
        req.port = promoted.port();
        net::AdminReplyBody reply;
        up = admin.admin(req, &reply).is_ok() && reply.ok == 1;
      }
      if (up) {
        net::ClientOptions co;
        co.device_id = owned.front();
        co.backoff_seed = 3;
        co.max_attempts = 1;
        co.breaker_failure_threshold = 0;
        net::AuthClient probe("127.0.0.1", gateway.port(), co);
        const util::Deadline give_up = util::Deadline::after_seconds(15.0);
        bool served = false;
        while (!served && !give_up.expired()) {
          SimulationModel::Prediction p;
          if (probe.predict(fleet_pool[0], &p).is_ok())
            served = true;
          else
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        fleet_recovery_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - k0)
                                .count();
        up = served;
      }
      // Zero acked loss: every device the dead shard had committed still
      // answers through the gateway.
      if (up)
        for (std::uint64_t id : owned) {
          net::ClientOptions co;
          co.device_id = id;
          co.backoff_seed = 4 + id;
          net::AuthClient c("127.0.0.1", gateway.port(), co);
          SimulationModel::Prediction p;
          if (!c.predict(fleet_pool[id % fleet_pool.size()], &p).is_ok())
            ++fleet_recovery_lost;
        }
      promoted.stop();
      std::filesystem::remove_all(standby_dir);
    }
    fleet_recovery_ok = up && fleet_recovery_lost == 0;
    gateway.stop();
    close_fleet_shards(shards);
  }
  std::cout << "fleet failover: shard of " << fleet_recovery_devices
            << " devices killed, standby promoted and re-pointed in "
            << util::Table::num(fleet_recovery_ms, 1) << " ms, "
            << fleet_recovery_lost << " acked devices lost ("
            << (fleet_recovery_ok ? "ok" : "FAILED") << ")\n";

  // --- leg 7: large registry — cold recovery + hydration hit-ratio curve --
  const std::size_t large_devices = bench::scaled(100000, 100000);
  // The snapshot is ONE CRC-framed body bounded by record.hpp's
  // kMaxBodyBytes (64 MB), so the bulk that fits in it is capped and the
  // rest ships as individually framed WAL records — which is also the
  // interesting half: recovery replays tens of thousands of records.
  const std::size_t large_bulk = std::min<std::size_t>(large_devices, 40000);
  const std::size_t large_wal_tail = large_devices - large_bulk;
  const std::size_t hydration_working_set =
      std::min<std::size_t>(4096, large_devices);
  const std::size_t hydration_requests = bench::scaled(20000, 4000);
  double large_build_seconds = 0.0, large_recovery_seconds = 0.0;
  std::size_t large_recovered = 0;
  std::size_t hydration_failures = 0;
  struct HydrationPoint {
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double hit_ratio = 0.0;
    double gets_per_sec = 0.0;
  };
  const std::size_t hydration_capacities[] = {64, 256, 1024, 4096};
  std::vector<HydrationPoint> hydration_curve;
  {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "ppuf_bench_large_registry";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    // One tiny fabricated instance provides the model blob every
    // synthesized device shares: the leg measures recovery and hydration
    // mechanics, and real per-device fabrication at this scale would
    // dominate the whole bench.
    PpufParams tiny;
    tiny.node_count = 6;
    tiny.grid_size = 3;
    MaxFlowPpuf tiny_chip(tiny, 4242);
    SimulationModel tiny_model(tiny_chip);
    protocol::codec::Writer blob_writer;
    protocol::codec::encode_sim_model(blob_writer, tiny_model);
    const std::vector<std::uint8_t> blob = blob_writer.take();
    const std::size_t bulk = large_bulk;

    const auto entry_for = [&](std::uint64_t id) {
      registry::DeviceEntry e;
      e.id = id;
      e.nodes = static_cast<std::uint32_t>(tiny.node_count);
      e.grid = static_cast<std::uint32_t>(tiny.grid_size);
      e.model_bytes = blob;
      return e;
    };
    large_build_seconds = bench::time_seconds([&] {
      registry::SnapshotBody snap;
      snap.next_id = bulk + 1;
      snap.entries.reserve(bulk);
      for (std::uint64_t id = 1; id <= bulk; ++id)
        snap.entries.push_back(entry_for(id));
      const std::vector<std::uint8_t> image = registry::frame_snapshot(snap);
      std::ofstream snap_out(dir / "snapshot.bin",
                             std::ios::binary | std::ios::trunc);
      snap_out.write(reinterpret_cast<const char*>(image.data()),
                     static_cast<std::streamsize>(image.size()));
      snap_out.close();
      std::ofstream wal_out(dir / "wal.log",
                            std::ios::binary | std::ios::trunc);
      for (std::uint64_t id = bulk + 1; id <= large_devices; ++id) {
        registry::WalRecord rec;
        rec.type = registry::WalRecord::Type::kEnroll;
        rec.entry = entry_for(id);
        const std::vector<std::uint8_t> frame = registry::frame_record(rec);
        wal_out.write(reinterpret_cast<const char*>(frame.data()),
                      static_cast<std::streamsize>(frame.size()));
      }
      wal_out.close();
    });

    registry::DeviceRegistry reg;
    bool opened = false;
    large_recovery_seconds = bench::time_seconds(
        [&] { opened = reg.open(dir.string()).is_ok(); });
    large_recovered = opened ? reg.device_count() : 0;
    if (!opened)
      std::cerr << "FATAL: large-registry recovery failed\n";

    // Hit-ratio curve: a uniform working set far larger than the small
    // capacities, so the curve shows capacity/working-set scaling up to
    // the capacity that holds the whole set.
    std::vector<std::uint64_t> ws_ids;
    ws_ids.reserve(hydration_working_set);
    const std::uint64_t stride = std::max<std::uint64_t>(
        1, large_devices / hydration_working_set);
    for (std::size_t i = 0; i < hydration_working_set; ++i)
      ws_ids.push_back(1 + static_cast<std::uint64_t>(i) * stride);
    for (const std::size_t capacity : hydration_capacities) {
      HydrationPoint point;
      point.capacity = capacity;
      if (opened) {
        registry::HydrationCache::Options ho;
        ho.max_entries = capacity;
        ho.verify_threads = 1;
        registry::HydrationCache cache(reg, ho);
        util::Rng rng(13 + capacity);
        const double secs = bench::time_seconds([&] {
          for (std::size_t i = 0; i < hydration_requests; ++i) {
            const std::uint64_t id = ws_ids[static_cast<std::size_t>(
                rng.uniform_int(0,
                                static_cast<std::int64_t>(
                                    hydration_working_set - 1)))];
            std::shared_ptr<const registry::HydratedDevice> dev;
            if (!cache.get(id, &dev).is_ok()) ++hydration_failures;
          }
        });
        const registry::HydrationCache::Stats hs = cache.stats();
        point.hits = hs.hits;
        point.misses = hs.misses;
        point.evictions = hs.evictions;
        point.hit_ratio =
            hs.hits + hs.misses > 0
                ? static_cast<double>(hs.hits) /
                      static_cast<double>(hs.hits + hs.misses)
                : 0.0;
        point.gets_per_sec =
            secs > 0.0 ? static_cast<double>(hydration_requests) / secs : 0.0;
      }
      hydration_curve.push_back(point);
    }
    std::filesystem::remove_all(dir);
  }
  util::Table htable({"capacity", "hits", "misses", "hit ratio",
                      "evictions", "gets/s"});
  for (const HydrationPoint& p : hydration_curve)
    htable.add_row({std::to_string(p.capacity), std::to_string(p.hits),
                    std::to_string(p.misses),
                    util::Table::num(p.hit_ratio, 3),
                    std::to_string(p.evictions),
                    util::Table::num(p.gets_per_sec, 4)});
  htable.print(std::cout);
  std::cout << "large registry: " << large_recovered << "/" << large_devices
            << " devices recovered cold in "
            << util::Table::num(large_recovery_seconds, 3) << " s (built in "
            << util::Table::num(large_build_seconds, 3) << " s, WAL tail "
            << large_wal_tail << " records), working set "
            << hydration_working_set << "\n";

  bench::paper_note(
      "the verifier is a service by construction: the prover owns the chip, "
      "the verifier owns only the published model — so load, deadlines and "
      "admission control are part of the authentication story, not ops "
      "trivia.");

  std::ofstream json(json_path);
  json << "{\n";
  json << "  \"nodes\": " << kNodes << ",\n";
  json << "  \"hardware_concurrency\": " << hw << ",\n";
  json << "  \"server_threads\": " << so.threads << ",\n";
  json << "  \"clients\": " << kClients << ",\n";
  json << "  \"requests_per_client\": " << requests_per_client << ",\n";
  json << "  \"items\": " << items << ",\n";
  json << "  \"failures\": " << total_failures << ",\n";
  json << "  \"seconds\": " << load_seconds << ",\n";
  json << "  \"items_per_sec\": " << items_per_sec << ",\n";
  json << "  \"p50_us\": " << p50 << ",\n";
  json << "  \"p95_us\": " << p95 << ",\n";
  json << "  \"p99_us\": " << p99 << ",\n";
  json << "  \"chained_auth_accepted\": " << chained_accepted << ",\n";
  json << "  \"deadline_typed_reply\": " << (deadline_typed ? 1 : 0) << ",\n";
  json << "  \"deadline_connection_survived\": "
       << (connection_survived ? 1 : 0) << ",\n";
  json << "  \"overloaded_typed_replies\": " << overloaded_replies << ",\n";
  json << "  \"overload_served\": " << served_under_overload << ",\n";
  json << "  \"registry_devices\": " << kRegistryDevices << ",\n";
  json << "  \"registry_failures\": " << registry_failures << ",\n";
  json << "  \"registry_cold_us\": " << registry_cold_us << ",\n";
  json << "  \"registry_warm_us\": " << registry_warm_us << ",\n";
  json << "  \"coalesce_connections\": " << kCoalesceConnections << ",\n";
  json << "  \"coalesce_pipeline_depth\": " << kPipelineDepth << ",\n";
  json << "  \"coalesce_per_connection\": " << per_connection << ",\n";
  json << "  \"coalesce_speedup\": " << coalesce_speedup << ",\n";
  json << "  \"coalesce_failures\": " << coalesce_failures << ",\n";
  json << "  \"coalesce_curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    json << "    {\"max_batch\": " << batch_sweep[i]
         << ", \"items_per_sec\": " << curve[i].items_per_sec
         << ", \"p99_window_us\": " << curve[i].p99_window_us
         << ", \"coalesced_batches\": " << curve[i].coalesced_batches
         << ", \"coalesced_items\": " << curve[i].coalesced_items << "}"
         << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"soak_connections\": " << soak_served << ",\n";
  json << "  \"soak_target\": " << soak_target << ",\n";
  json << "  \"soak_seconds\": " << soak_seconds << ",\n";
  json << "  \"soak_live\": " << (soak_live ? 1 : 0) << ",\n";
  json << "  \"fleet_devices\": " << kFleetDevices << ",\n";
  json << "  \"fleet_requests_per_device\": " << fleet_requests_per_device
       << ",\n";
  json << "  \"fleet_scaling\": [\n";
  for (std::size_t i = 0; i < fleet_runs.size(); ++i) {
    const FleetRun& r = fleet_runs[i];
    json << "    {\"shards\": " << r.shards
         << ", \"items_per_sec\": " << r.items_per_sec
         << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
         << ", \"forwarded\": " << r.forwarded
         << ", \"dropped_inflight\": " << r.dropped_inflight
         << ", \"failures\": " << r.failures << "}"
         << (i + 1 < fleet_runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"fleet_recovery_ms\": " << fleet_recovery_ms << ",\n";
  json << "  \"fleet_recovery_devices\": " << fleet_recovery_devices
       << ",\n";
  json << "  \"fleet_recovery_lost\": " << fleet_recovery_lost << ",\n";
  json << "  \"fleet_recovery_ok\": " << (fleet_recovery_ok ? 1 : 0)
       << ",\n";
  json << "  \"large_registry_devices\": " << large_devices << ",\n";
  json << "  \"large_registry_wal_tail\": " << large_wal_tail << ",\n";
  json << "  \"large_registry_recovered\": " << large_recovered << ",\n";
  json << "  \"large_registry_build_seconds\": " << large_build_seconds
       << ",\n";
  json << "  \"large_registry_recovery_seconds\": "
       << large_recovery_seconds << ",\n";
  json << "  \"large_registry_recovery_devices_per_sec\": "
       << (large_recovery_seconds > 0.0
               ? static_cast<double>(large_recovered) /
                     large_recovery_seconds
               : 0.0)
       << ",\n";
  json << "  \"hydration_working_set\": " << hydration_working_set << ",\n";
  json << "  \"hydration_requests\": " << hydration_requests << ",\n";
  json << "  \"hydration_curve\": [\n";
  for (std::size_t i = 0; i < hydration_curve.size(); ++i) {
    const HydrationPoint& p = hydration_curve[i];
    json << "    {\"capacity\": " << p.capacity << ", \"hits\": " << p.hits
         << ", \"misses\": " << p.misses
         << ", \"hit_ratio\": " << p.hit_ratio
         << ", \"evictions\": " << p.evictions
         << ", \"gets_per_sec\": " << p.gets_per_sec << "}"
         << (i + 1 < hydration_curve.size() ? "," : "") << "\n";
  }
  json << "  ]\n";
  json << "}\n";
  std::cout << "json written to " << json_path << "\n";

  bool failed = false;
  if (total_failures != 0) {
    std::cerr << "FAIL: " << total_failures << " load requests failed\n";
    failed = true;
  }
  if (chained_accepted != kClients) {
    std::cerr << "FAIL: only " << chained_accepted << "/" << kClients
              << " chained auths accepted\n";
    failed = true;
  }
  if (!deadline_typed || !connection_survived) {
    std::cerr << "FAIL: deadline leg did not produce a typed reply on a "
              << "surviving connection\n";
    failed = true;
  }
  if (overloaded_replies != 2 || served_under_overload != 1) {
    std::cerr << "FAIL: overload leg expected 1 served + 2 typed OVERLOADED "
              << "replies\n";
    failed = true;
  }
  if (registry_failures != 0) {
    std::cerr << "FAIL: " << registry_failures
              << " registry-leg predicts failed\n";
    failed = true;
  }
  if (coalesce_failures != 0) {
    std::cerr << "FAIL: " << coalesce_failures
              << " coalescing-leg predicts failed\n";
    failed = true;
  }
  if (coalesce_speedup < 2.0) {
    std::cerr << "FAIL: coalescing speedup "
              << util::Table::num(coalesce_speedup, 2)
              << "x is below the 2x gate\n";
    failed = true;
  }
  if (curve[2].coalesced_batches == 0) {
    std::cerr << "FAIL: the coalesce-on leg never formed a batch\n";
    failed = true;
  }
  if (soak_served != soak_target || !soak_live) {
    std::cerr << "FAIL: soak served " << soak_served << "/" << soak_target
              << " with liveness " << (soak_live ? "ok" : "lost") << "\n";
    failed = true;
  }
  for (const FleetRun& r : fleet_runs) {
    if (!r.ok) {
      std::cerr << "FAIL: fleet leg (shards=" << r.shards << ") had "
                << r.failures << " failed predicts and "
                << r.dropped_inflight << " dropped in-flight forwards\n";
      failed = true;
    }
  }
  if (!fleet_recovery_ok) {
    std::cerr << "FAIL: fleet failover did not recover cleanly ("
              << fleet_recovery_lost << " acked devices lost)\n";
    failed = true;
  }
  if (large_recovered != large_devices) {
    std::cerr << "FAIL: large registry recovered " << large_recovered << "/"
              << large_devices << " devices\n";
    failed = true;
  }
  if (hydration_failures != 0) {
    std::cerr << "FAIL: " << hydration_failures
              << " hydration gets failed\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
