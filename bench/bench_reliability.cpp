// Extension bench: reliability engineering around Table 1.
//   1. Bit-error rate vs comparator noise — how much comparator you need
//      for a target BER at a given size.
//   2. Majority voting — the standard way to stabilise PUF bits that feed
//      key derivation; BER vs number of votes.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/reliability.hpp"

using namespace ppuf;

int main() {
  util::print_banner(std::cout,
                     "Extension: bit-error rate and majority voting");
  PpufParams params;
  params.node_count = 40;
  params.grid_size = 8;

  {
    MaxFlowPpuf puf(params, 3131);
    util::Rng rng(1);
    const std::vector<double> sigmas{1e-9, 5e-9, 2e-8, 1e-7, 5e-7};
    const auto points = metrics::ber_vs_noise(
        puf, sigmas, bench::scaled(32, 16), bench::scaled(40, 20), rng);
    util::Table t({"comparator noise [nA]", "bit error rate"});
    for (const auto& p : points) {
      t.add_row({util::Table::num(p.noise_sigma * 1e9, 1),
                 util::Table::num(p.bit_error_rate, 4)});
    }
    t.print(std::cout);
    std::cout << "(the Fig. 8 A-B current differences are ~100-400 nA at "
                 "this size: single-digit-nA comparator noise keeps the "
                 "BER in the Table 1 intra-class range.)\n";
  }

  {
    util::print_banner(std::cout, "Majority voting under heavy noise");
    PpufParams noisy = params;
    noisy.node_count = 16;  // smaller margins, visible error floor
    noisy.comparator_noise_sigma = 5e-8;
    MaxFlowPpuf puf(noisy, 3232);
    util::Table t({"votes", "BER"});
    for (const std::size_t votes : {1ul, 3ul, 5ul, 9ul, 15ul}) {
      util::Rng rng(7);
      const double ber = metrics::majority_vote_ber(
          puf, votes, bench::scaled(40, 20), rng);
      t.add_row({std::to_string(votes), util::Table::num(ber, 4)});
    }
    t.print(std::cout);
    std::cout << "(votes suppress noise-induced flips roughly like the "
                 "binomial tail; challenges whose margin sits inside the "
                 "noise band dominate the residual BER.)\n";
  }
  return 0;
}
