// Figure 3 reproduction.
//
// (a) I-V relation of the three building-block designs (bare transistor,
//     one-level SD, two-level SD): source degeneration suppresses the
//     saturation-current change caused by short-channel effects.
// (b) Saturation current vs control voltage Vgs0, and the complementary
//     bias pair that makes the input-0 and input-1 nominal currents equal.
#include <iostream>

#include "bench_common.hpp"
#include "ppuf/block.hpp"

using namespace ppuf;

namespace {

void figure_3a() {
  util::print_banner(std::cout, "Figure 3(a): I-V of block designs");
  PpufParams params;
  const circuit::Environment env = circuit::Environment::nominal();

  std::vector<double> grid;
  for (double v = 0.0; v <= 2.4001; v += 0.2) grid.push_back(v);

  util::Table t({"V [V]", "bare I [nA]", "1-level SD I [nA]",
                 "2-level SD I [nA]"});
  std::vector<std::vector<double>> currents;
  for (const BlockDesign d :
       {BlockDesign::kBare, BlockDesign::kSingleSd, BlockDesign::kDoubleSd}) {
    SweepCircuit sc = build_stage_test(params, d, params.vgs_low, nullptr,
                                       env);
    currents.push_back(sweep_current(sc, grid, env));
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    t.add_row({util::Table::num(grid[i], 1),
               util::Table::num(currents[0][i] * 1e9, 3),
               util::Table::num(currents[1][i] * 1e9, 3),
               util::Table::num(currents[2][i] * 1e9, 3)});
  }
  t.print(std::cout);

  auto change = [&](const std::vector<double>& i) {
    const std::size_t at1 = 5;   // V = 1.0
    const std::size_t at2 = 10;  // V = 2.0
    return 100.0 * (i[at2] - i[at1]) / i[at1];
  };
  std::cout << "saturation-current change over 1..2 V:  bare "
            << util::Table::num(change(currents[0]), 2) << "%,  1-level "
            << util::Table::num(change(currents[1]), 2) << "%,  2-level "
            << util::Table::num(change(currents[2]), 2) << "%\n";
  bench::paper_note(
      "Fig 3(a) shows the same ordering: SD flattens the plateau.");
}

void figure_3b() {
  util::print_banner(std::cout,
                     "Figure 3(b): saturation current vs control voltage");
  PpufParams params;
  const circuit::Environment env = circuit::Environment::nominal();
  const circuit::BlockVariation nominal{};

  util::Table t({"Vgs0 [V]", "Isat [nA]"});
  for (double vgs = 0.44; vgs <= 0.661; vgs += 0.02) {
    PpufParams p = params;
    p.vgs_low = vgs;
    const BlockCurve c = characterize_block(p, nominal, 1, env);
    t.add_row({util::Table::num(vgs, 2), util::Table::num(c.isat * 1e9, 3)});
  }
  t.print(std::cout);

  const BlockCurve c0 = characterize_block(params, nominal, 0, env);
  const BlockCurve c1 = characterize_block(params, nominal, 1, env);
  std::cout << "complementary pair Vgs0 = " << params.vgs_low << " / "
            << params.vgs_high()
            << " V (Vc = " << params.vc << " V): nominal Isat(input 0) = "
            << util::Table::num(c0.isat * 1e9, 3) << " nA, Isat(input 1) = "
            << util::Table::num(c1.isat * 1e9, 3) << " nA\n";
  bench::paper_note(
      "the paper picks 0.67/0.5 V on its PTM card so both inputs share the "
      "same nominal current; our symmetric 0.7/0.5 V split achieves the "
      "same property on our device card.");
}

}  // namespace

int main() {
  figure_3a();
  figure_3b();
  return 0;
}
