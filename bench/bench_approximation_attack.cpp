// Extension bench: does approximate computing break the ESG?
//
// Section 2 argues the ESG survives approximation because eps-approximate
// max-flow still costs Omega(n^2).  But the attacker doesn't need the
// *flow* — only the comparator's *bit*, i.e. the sign of F_A - F_B.  This
// bench measures, on real PPUF instances:
//   1. certified (1-eps) scaling augmentation: speedup vs bit accuracy;
//   2. O(n) structural heuristics (trivial cut bound, two-hop flow):
//      essentially free — how often do they recover the bit?
//
// Headline structural finding of this reproduction (also printed below):
// on a complete graph with strictly positive i.i.d. capacities, every
// non-terminal cut crosses >= 2(n-2) edges versus the terminal stars'
// n-1, so the minimum cut is (w.h.p.) the source or sink star and the
// max-flow VALUE equals min(out-cap(s), in-cap(t)) — an O(n) computation.
// The response *bit* therefore carries no ESG.  What remains hard is the
// WITNESS: the flow function / residual edges the paper's verification
// asks for (Section 3.2) have size Theta(n^2) and require a genuine
// max-flow solve to produce — exactly why the protocol must demand the
// flows, never just the comparator bit.
#include <cmath>
#include <iostream>

#include "attack/heuristic.hpp"
#include "bench_common.hpp"
#include "maxflow/approximate.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"

using namespace ppuf;

int main() {
  util::print_banner(std::cout,
                     "Extension: approximate/heuristic bit-recovery attacks");
  PpufParams params;
  params.node_count = 40;
  params.grid_size = 8;
  MaxFlowPpuf puf(params, 2211);
  SimulationModel model(puf);
  util::Rng rng(5);

  const std::size_t trials = bench::scaled(60, 30);
  std::vector<Challenge> cs;
  std::vector<int> truth;
  for (std::size_t i = 0; i < trials; ++i) {
    cs.push_back(random_challenge(puf.layout(), rng));
    truth.push_back(model.predict(cs.back()).bit);
  }

  // Exact solve cost reference.
  std::uint64_t exact_work = 0;
  {
    const auto solver = maxflow::make_solver(maxflow::Algorithm::kDinic);
    for (const Challenge& c : cs) {
      for (int net = 0; net < 2; ++net) {
        const graph::Digraph g = model.build_graph(net, c);
        exact_work += solver->solve({&g, c.source, c.sink}).work;
      }
    }
  }

  util::Table t({"attack", "bit accuracy", "work vs exact"});
  for (const double eps : {0.02, 0.1, 0.3, 0.6}) {
    std::size_t correct = 0;
    std::uint64_t work = 0;
    for (std::size_t i = 0; i < trials; ++i) {
      double flows[2];
      for (int net = 0; net < 2; ++net) {
        const graph::Digraph g = model.build_graph(net, cs[i]);
        const maxflow::ApproximateResult r = maxflow::solve_approximate(
            {&g, cs[i].source, cs[i].sink}, eps);
        flows[net] = r.value;
        work += r.work;
      }
      const int bit =
          (flows[0] - flows[1] + model.comparator_offset()) > 0.0 ? 1 : 0;
      correct += bit == truth[i] ? 1 : 0;
    }
    t.add_row({"(1-" + util::Table::num(eps, 2) + ")-approx scaling",
               util::Table::num(static_cast<double>(correct) / trials, 3),
               util::Table::num(static_cast<double>(work) / exact_work, 3)});
  }
  {
    std::size_t cut_ok = 0, hop_ok = 0;
    for (std::size_t i = 0; i < trials; ++i) {
      cut_ok += attack::predict_bit_cut_bound(model, cs[i]) == truth[i];
      hop_ok += attack::predict_bit_two_hop(model, cs[i]) == truth[i];
    }
    t.add_row({"O(n) cut bound",
               util::Table::num(static_cast<double>(cut_ok) / trials, 3),
               "~0 (n ops)"});
    t.add_row({"O(n) two-hop flow",
               util::Table::num(static_cast<double>(hop_ok) / trials, 3),
               "~0 (n ops)"});
  }
  t.print(std::cout);

  // Why the cut bound is (near) perfect: the terminal star is the minimum
  // cut, so the bound IS the max flow.
  std::size_t equal = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const double f = model.predicted_flow(0, cs[i]);
    if (attack::cut_bound_value(model, 0, cs[i]) <= f * (1.0 + 1e-9))
      ++equal;
  }
  std::cout << "\nstructural check: max-flow == min(out-cap(s), in-cap(t)) "
               "in "
            << equal << "/" << trials
            << " instances — on complete graphs the flow VALUE is O(n)-"
               "computable, so the comparator bit alone carries no ESG.\n";
  std::cout << "consequence: authentication must demand the Theta(n^2) "
               "flow witness (the residual edges of Sec. 3.2, as "
               "src/protocol does); producing a feasible maximum flow "
               "function still requires the real solve, and even writing "
               "it down costs Omega(n^2).\n";
  bench::paper_note(
      "the paper's O(n^2) lower bound covers flow computation; this bench "
      "shows the flow *value* (hence the bare response bit) escapes it on "
      "complete graphs, and why the paper's residual-edge verification is "
      "the right protocol: the witness, not the bit, is what is hard.");
  return 0;
}
