// Section 5 power estimate: the two crossbars burn V(s)(I_A + I_B), the
// comparator adds 153 uW (paper ref [25]), and one evaluation costs
// power x execution-delay.  Paper: ~134.4 uW crossbars, ~287.4 pJ per
// evaluation for the 900-node design.
#include <iostream>

#include "bench_common.hpp"
#include "ppuf/delay.hpp"
#include "ppuf/power.hpp"
#include "ppuf/ppuf.hpp"
#include "util/fit.hpp"
#include "util/statistics.hpp"

using namespace ppuf;

int main() {
  util::print_banner(std::cout, "Section 5: power and energy per evaluation");

  // Measure the average source current on mid-size instances, fit, and
  // extrapolate to 900 nodes (exactly the paper's procedure via Fig. 8).
  const std::vector<std::size_t> sizes{20, 40, 60, 80};
  std::vector<double> ns, avg_current;
  for (const std::size_t n : sizes) {
    PpufParams params;
    params.node_count = n;
    params.grid_size = 8;
    MaxFlowPpuf puf(params, 9000 + n);
    util::Rng rng(2);
    util::RunningStats current;
    for (int c = 0; c < 6; ++c) {
      const Challenge ch = random_challenge(puf.layout(), rng);
      const auto e = puf.evaluate(ch);
      current.add(0.5 * (e.current_a + e.current_b));
    }
    ns.push_back(static_cast<double>(n));
    avg_current.push_back(current.mean());
  }
  const util::PowerLaw fit = util::fit_power_law(ns, avg_current);

  PpufParams params;
  util::Table t({"nodes", "avg current [uA]", "crossbar power [uW]",
                 "total power [uW]", "exe delay [us]", "energy/eval [pJ]"});
  for (const std::size_t n : {100ul, 300ul, 900ul}) {
    const double current = fit(static_cast<double>(n));
    const double delay = analytic_delay_bound(params, n);
    const PowerEstimate e = estimate_power(params, current, delay);
    t.add_row({std::to_string(n), util::Table::num(current * 1e6, 2),
               util::Table::num(e.crossbar_power * 1e6, 2),
               util::Table::num(e.total_power * 1e6, 2),
               util::Table::num(delay * 1e6, 3),
               util::Table::num(e.energy_per_eval * 1e12, 1)});
  }
  t.print(std::cout);
  bench::paper_note(
      "900 nodes: 134.4 uW crossbars + 153 uW comparator, 1.0 us delay, "
      "~287.4 pJ per evaluation.");
  return 0;
}
