// Figure 6 reproduction: inaccuracy of the max-flow simulation model
// against the circuit execution, |I_exe - I_sim| / I_exe, versus PPUF node
// count.  The paper reports < 1% average over 100 runs per size, with an
// instance-to-instance flow variation of ~9.27% at 100 nodes (so the model
// error is far below the signal).
#include <iostream>

#include "bench_common.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "util/statistics.hpp"

using namespace ppuf;

int main() {
  util::print_banner(std::cout,
                     "Figure 6: simulation-model inaccuracy vs node count");
  const std::vector<std::size_t> sizes{10, 20, 30, 40, 50, 60, 80, 100};
  const std::size_t instances = bench::scaled(3, 2);
  const std::size_t challenges = bench::scaled(6, 3);

  util::Table t({"nodes", "runs", "avg inaccuracy [%]", "max [%]",
                 "flow variation [%]"});
  for (const std::size_t n : sizes) {
    PpufParams params;
    params.node_count = n;
    params.grid_size = std::min<std::size_t>(8, n / 2);
    util::RunningStats err;
    util::RunningStats flows;
    for (std::size_t inst = 0; inst < instances; ++inst) {
      MaxFlowPpuf puf(params, 6000 + 17 * n + inst);
      SimulationModel model(puf);
      util::Rng rng(100 + inst);
      for (std::size_t c = 0; c < challenges; ++c) {
        const Challenge ch = random_challenge(puf.layout(), rng);
        const auto exe = puf.evaluate(ch);
        const auto sim = model.predict(ch);
        err.add(std::abs(exe.current_a - sim.flow_a) / exe.current_a);
        err.add(std::abs(exe.current_b - sim.flow_b) / exe.current_b);
        flows.add(exe.current_a);
        flows.add(exe.current_b);
      }
    }
    t.add_row({std::to_string(n), std::to_string(err.count()),
               util::Table::num(100.0 * err.mean(), 3),
               util::Table::num(100.0 * err.max(), 3),
               util::Table::num(100.0 * flows.stddev() / flows.mean(), 2)});
  }
  t.print(std::cout);
  bench::paper_note(
      "average inaccuracy < 1% at every size; maximum-flow variation "
      "~9.27% at 100 nodes — the model error is well below the "
      "instance-to-instance signal.");
  return 0;
}
