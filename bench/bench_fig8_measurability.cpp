// Figure 8 reproduction: output measurability.  Average source current and
// the A-B current difference versus node count, linear fits, and the
// extrapolation to the 900-node design point that Section 5 checks against
// published comparator specs (paper: 33.6 uA average, 2.89 uA difference at
// 900 nodes).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "ppuf/ppuf.hpp"
#include "util/fit.hpp"
#include "util/statistics.hpp"

using namespace ppuf;

int main() {
  util::print_banner(std::cout,
                     "Figure 8: output current average and difference");
  const std::vector<std::size_t> sizes{20, 40, 60, 80, 100};
  const std::size_t instances = bench::scaled(3, 2);
  const std::size_t challenges = bench::scaled(6, 4);

  std::vector<double> ns, avg_current, avg_diff;
  util::Table t({"nodes", "avg current [uA]", "avg |I_A - I_B| [uA]"});
  for (const std::size_t n : sizes) {
    PpufParams params;
    params.node_count = n;
    params.grid_size = 8;
    util::RunningStats current;
    util::RunningStats diff;
    for (std::size_t inst = 0; inst < instances; ++inst) {
      MaxFlowPpuf puf(params, 8000 + 13 * n + inst);
      util::Rng rng(inst + 1);
      for (std::size_t c = 0; c < challenges; ++c) {
        const Challenge ch = random_challenge(puf.layout(), rng);
        const auto e = puf.evaluate(ch);
        current.add(0.5 * (e.current_a + e.current_b));
        diff.add(std::abs(e.current_a - e.current_b));
      }
    }
    ns.push_back(static_cast<double>(n));
    avg_current.push_back(current.mean());
    avg_diff.push_back(diff.mean());
    t.add_row({std::to_string(n),
               util::Table::num(current.mean() * 1e6, 3),
               util::Table::num(diff.mean() * 1e6, 4)});
  }
  t.print(std::cout);

  const util::PowerLaw current_fit = util::fit_power_law(ns, avg_current);
  const util::PowerLaw diff_fit = util::fit_power_law(ns, avg_diff);
  std::cout << "fit: avg current ~ " << current_fit.to_string()
            << " A   (expected ~linear: n-1 source edges)\n";
  std::cout << "fit: current diff ~ " << diff_fit.to_string()
            << " A  (expected ~sqrt: random-walk of per-edge mismatch)\n";

  const double at900_current = current_fit(900.0);
  const double at900_diff = diff_fit(900.0);
  std::cout << "\nextrapolation to 900 nodes: avg current "
            << util::Table::num(at900_current * 1e6, 2)
            << " uA, avg difference "
            << util::Table::num(at900_diff * 1e6, 3) << " uA\n";
  std::cout << "comparator requirement: input range >= "
            << util::Table::num(at900_current * 1e6, 1)
            << " uA, resolution <= "
            << util::Table::num(at900_diff * 1e6, 3)
            << " uA — within the specs of the current comparators the "
               "paper cites ([25, 26]).\n";
  bench::paper_note(
      "33.6 uA average and 2.89 uA difference at 900 nodes; both scale the "
      "same way here (average ~ n, difference much slower).");
  return 0;
}
