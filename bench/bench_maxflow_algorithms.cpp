// Max-flow substrate microbenchmarks (google-benchmark): the three solvers
// on complete graphs (the PPUF's instance family), plus the verification
// asymmetry of Section 2 — optimality checking is a single residual-graph
// BFS, serial or frontier-parallel.
#include <benchmark/benchmark.h>

#include "graph/complete.hpp"
#include "maxflow/push_relabel.hpp"
#include "maxflow/solver.hpp"
#include "maxflow/verify.hpp"
#include "util/rng.hpp"

namespace {

using namespace ppuf;

graph::Digraph complete_instance(std::size_t n) {
  util::Rng rng(n * 2654435761u);
  return graph::make_complete_uniform(n, rng);
}

void BM_EdmondsKarp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Digraph g = complete_instance(n);
  const auto solver = maxflow::make_solver(maxflow::Algorithm::kEdmondsKarp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver->solve({&g, 0, static_cast<graph::VertexId>(n - 1)}));
  }
  state.SetComplexityN(state.range(0));
}

void BM_Dinic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Digraph g = complete_instance(n);
  const auto solver = maxflow::make_solver(maxflow::Algorithm::kDinic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver->solve({&g, 0, static_cast<graph::VertexId>(n - 1)}));
  }
  state.SetComplexityN(state.range(0));
}

void BM_PushRelabel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Digraph g = complete_instance(n);
  const auto solver = maxflow::make_solver(maxflow::Algorithm::kPushRelabel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver->solve({&g, 0, static_cast<graph::VertexId>(n - 1)}));
  }
  state.SetComplexityN(state.range(0));
}

void BM_PushRelabelNoHeuristics(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Digraph g = complete_instance(n);
  maxflow::PushRelabelOptions opts;
  opts.gap_heuristic = false;
  opts.global_relabel = false;
  const maxflow::PushRelabel solver(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.solve({&g, 0, static_cast<graph::VertexId>(n - 1)}));
  }
  state.SetComplexityN(state.range(0));
}

/// Verification side: check a maximum flow (the cheap asymmetric check the
/// on-chip PPUF enables).
void BM_VerifyOptimal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const graph::Digraph g = complete_instance(n);
  const auto t = static_cast<graph::VertexId>(n - 1);
  const maxflow::FlowResult flow =
      maxflow::make_solver(maxflow::Algorithm::kPushRelabel)
          ->solve({&g, 0, t});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        maxflow::verify_flow(g, 0, t, flow.edge_flow, 1e-9, threads));
  }
  state.SetComplexityN(state.range(0));
}

}  // namespace

BENCHMARK(BM_EdmondsKarp)->RangeMultiplier(2)->Range(16, 128)->Complexity();
BENCHMARK(BM_Dinic)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_PushRelabel)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_PushRelabelNoHeuristics)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->Complexity();
BENCHMARK(BM_VerifyOptimal)
    ->ArgsProduct({{64, 128, 256}, {1, 2, 4}})
    ->Complexity();

BENCHMARK_MAIN();
