// Requirement 2 (Section 3.1): the process-variation amplitude of the
// saturation current must dominate the SCE-induced inaccuracy.  The paper's
// SPICE Monte Carlo reports a ~130x ratio with two-level SD; this bench
// reports the same ratio for our device card, per SD level.
#include <iostream>

#include "bench_common.hpp"
#include "ppuf/block.hpp"
#include "util/statistics.hpp"

using namespace ppuf;

int main() {
  util::print_banner(
      std::cout, "Requirement 2: Isat variation amplitude vs SCE change");
  PpufParams params;
  const circuit::Environment env = circuit::Environment::nominal();
  const std::size_t draws = bench::scaled(200, 50);

  // Per-design comparison on the single-stage test circuit (apples to
  // apples with Fig. 3a), measuring the current change over the plateau
  // and the Monte-Carlo spread of the plateau current.
  util::Table t({"design", "sigma(Isat) [nA]", "mean SCE change [nA]",
                 "ratio"});
  for (const auto& [design, name] :
       {std::pair{BlockDesign::kBare, "bare"},
        std::pair{BlockDesign::kSingleSd, "1-level SD"},
        std::pair{BlockDesign::kDoubleSd, "2-level SD"}}) {
    util::Rng rng(11);
    util::RunningStats isat;
    util::RunningStats sce;
    const std::vector<double> probe{1.0, 2.0};
    for (std::size_t i = 0; i < draws; ++i) {
      const circuit::BlockVariation var =
          circuit::draw_block_variation(params.variation, rng);
      SweepCircuit sc =
          build_stage_test(params, design, params.vgs_low, &var, env);
      const std::vector<double> cur = sweep_current(sc, probe, env);
      isat.add(cur[0]);
      sce.add(std::abs(cur[1] - cur[0]));
    }
    t.add_row({name, util::Table::num(isat.stddev() * 1e9, 3),
               util::Table::num(sce.mean() * 1e9, 4),
               util::Table::num(isat.stddev() / sce.mean(), 1)});
  }
  t.print(std::cout);

  // The full two-stage block (what the crossbar actually instantiates).
  {
    util::Rng rng(12);
    util::RunningStats isat;
    util::RunningStats sce;
    for (std::size_t i = 0; i < draws; ++i) {
      const circuit::BlockVariation var =
          circuit::draw_block_variation(params.variation, rng);
      const BlockCurve c = characterize_block(params, var, 1, env);
      isat.add(c.isat);
      sce.add(std::abs(c.iv(2.0) - c.iv(1.0)));
    }
    std::cout << "full block (2x two-level SD stages): sigma(Isat) = "
              << util::Table::num(isat.stddev() * 1e9, 3)
              << " nA, mean SCE change = "
              << util::Table::num(sce.mean() * 1e9, 4)
              << " nA, ratio = "
              << util::Table::num(isat.stddev() / sce.mean(), 1) << "x\n";
  }
  bench::paper_note(
      "~130x with two-level SD on the 32 nm PTM card; same order here.");
  return 0;
}
