// Chaos campaign driver: the long-running companion of the bounded
// chaos_test suite.
//
// Runs the kill-9 crash-recovery torture FIRST (it forks, so it must
// happen before any thread is spawned), then one seeded fault-schedule
// campaign per seed against a live registry-mode server.  Aggregated
// results — faults injected, request/violation tallies, recovery p50/p99
// — land in BENCH_chaos.json (argv[1]) so CI can archive the trend.
//
// Exit status is the acceptance gate: 0 only when every invariant held
// (violations == 0) and the campaigns actually injected faults.  On a
// violation the failing seed is printed and written to
// chaos_failing_seed.txt so the exact schedule can be replayed locally:
//
//   ./bench/bench_chaos [out.json] [--extra-seed S] [--seconds SEC]
//   ./tools/ppuf_tool chaos --seed S        # reproduce a CI failure
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "testing/chaos/chaos.hpp"

namespace {

using namespace ppuf;

constexpr std::uint64_t kFixedSeeds[] = {1, 2, 3, 4, 5};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_chaos.json";
  std::vector<std::uint64_t> seeds(std::begin(kFixedSeeds),
                                   std::end(kFixedSeeds));
  double seconds = 1.5;
  int torture_iterations = 25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--extra-seed" && i + 1 < argc) {
      seeds.push_back(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--torture" && i + 1 < argc) {
      torture_iterations = std::atoi(argv[++i]);
    } else {
      out_path = arg;
    }
  }

  testing::chaos::Aggregate aggregate;

  // Torture first: fork() needs a single-threaded process, and every
  // campaign below spawns (and joins) server/client/scheduler threads.
  {
    testing::chaos::TortureOptions options;
    options.iterations = torture_iterations;
    options.seed = 11;
    std::cout << "[chaos] kill-9 torture: " << options.iterations
              << " iterations\n";
    const testing::chaos::TortureResult torture =
        testing::chaos::run_kill9_torture(options);
    aggregate.add(torture);
    std::cout << "[chaos]   committed enrolls=" << torture.committed_enrolls
              << " revokes=" << torture.committed_revokes
              << " violations=" << torture.violations.size() << "\n";
  }

  for (const std::uint64_t seed : seeds) {
    testing::chaos::CampaignOptions options;
    options.seed = seed;
    options.duration_s = seconds;
    options.restarts = 2;
    std::cout << "[chaos] campaign seed=" << seed << " (" << seconds
              << " s)\n";
    const testing::chaos::CampaignResult result =
        testing::chaos::run_campaign(options);
    aggregate.add(result);
    std::cout << "[chaos]   faults=" << result.faults_injected
              << " requests=" << result.requests << " ok=" << result.ok
              << " transient=" << result.typed_transient
              << " violations=" << result.violations.size() << "\n";
    for (const std::string& v : result.violations)
      std::cout << "[chaos]   VIOLATION: " << v << "\n";
  }

  std::ofstream out(out_path);
  out << aggregate.to_json();
  out.close();
  std::cout << "[chaos] wrote " << out_path << "\n";

  if (!aggregate.passed()) {
    std::cout << "[chaos] FAILED: " << aggregate.violation_count
              << " violation(s), first failing seed "
              << aggregate.failing_seed << "\n"
              << "[chaos] reproduce: ppuf_tool chaos --seed "
              << aggregate.failing_seed << "\n";
    std::ofstream fail("chaos_failing_seed.txt");
    fail << aggregate.failing_seed << "\n";
    return 1;
  }
  if (aggregate.faults_injected == 0) {
    std::cout << "[chaos] FAILED: no faults injected — the campaign "
                 "tested nothing\n";
    return 1;
  }
  std::cout << "[chaos] PASS: " << aggregate.faults_injected
            << " faults injected, 0 violations, recovery p99 "
            << testing::chaos::percentile(aggregate.recovery_ms, 99.0)
            << " ms\n";
  return 0;
}
