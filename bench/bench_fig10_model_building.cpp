// Figure 10 reproduction: model-building attack resilience.  Prediction
// error of the best of {LS-SVM(RBF), SMO-SVM(RBF), KNN k=1..21} versus the
// number of observed CRPs, for 40-node and 100-node PPUFs against a 64-bit
// arbiter PUF.  The paper's claim: the PPUF's prediction error stays more
// than an order of magnitude above the arbiter's.
#include <iostream>

#include "attack/harness.hpp"
#include "attack/lssvm.hpp"
#include "metrics/flip.hpp"
#include "bench_common.hpp"
#include "ppuf/ppuf.hpp"
#include "puf/arbiter.hpp"

using namespace ppuf;

namespace {

attack::Dataset collect_ppuf_crps(std::size_t nodes, std::size_t count,
                                  std::uint64_t seed) {
  PpufParams params;
  params.node_count = nodes;
  params.grid_size = 8;  // 64 type-B bits, equal input length to the arbiter
  MaxFlowPpuf puf(params, seed);
  util::Rng rng(5);
  std::vector<std::vector<std::uint8_t>> challenges;
  std::vector<int> responses;
  for (std::size_t i = 0; i < count; ++i) {
    // A model-building adversary observes one type-A setting (fixed
    // source/sink) and varies the type-B bits.
    const Challenge c = random_challenge_fixed_ends(puf.layout(), 0, 1, rng);
    challenges.emplace_back(c.bits.begin(), c.bits.end());
    responses.push_back(puf.evaluate(c).bit);
  }
  return attack::encode_bits(challenges, responses);
}

/// Full-input-vector CRPs: the adversary sees the raw physical challenge
/// lines, type-A selection included.  The hidden per-(source,sink)
/// structure makes this the harder (and more paper-faithful) target.
attack::Dataset collect_ppuf_crps_full(std::size_t nodes, std::size_t count,
                                       std::uint64_t seed) {
  PpufParams params;
  params.node_count = nodes;
  params.grid_size = 8;
  MaxFlowPpuf puf(params, seed);
  const std::size_t width = metrics::full_input_bits(puf.layout());
  util::Rng rng(6);
  std::vector<std::vector<std::uint8_t>> inputs;
  std::vector<int> responses;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> vec(width);
    for (auto& b : vec) b = rng.coin() ? 1 : 0;
    const Challenge c = metrics::decode_full_input(puf.layout(), vec);
    responses.push_back(puf.evaluate(c).bit);
    inputs.push_back(std::move(vec));
  }
  return attack::encode_bits(inputs, responses);
}

attack::Dataset collect_arbiter_crps(std::size_t stages, std::size_t count,
                                     std::uint64_t seed) {
  const puf::ArbiterPuf target(stages, seed);
  util::Rng rng(6);
  std::vector<std::vector<std::uint8_t>> challenges;
  std::vector<int> responses;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> c(stages);
    for (auto& b : c) b = rng.coin() ? 1 : 0;
    responses.push_back(target.evaluate(c));
    challenges.push_back(std::move(c));
  }
  return attack::encode_bits(challenges, responses);
}

/// The strongest known arbiter attack additionally knows the parity
/// feature map; this is the floor the PPUF is compared against.
double arbiter_parity_attack_error(std::size_t stages, std::size_t train_n,
                                   std::uint64_t seed) {
  const puf::ArbiterPuf target(stages, seed);
  util::Rng rng(7);
  auto make = [&](std::size_t count) {
    std::vector<std::vector<double>> feats;
    std::vector<int> resp;
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<std::uint8_t> c(stages);
      for (auto& b : c) b = rng.coin() ? 1 : 0;
      feats.push_back(puf::ArbiterPuf::parity_features(c));
      resp.push_back(target.evaluate(c));
    }
    return attack::from_features(std::move(feats), std::move(resp));
  };
  const attack::Dataset train = make(train_n);
  const attack::Dataset test = make(400);
  const attack::LsSvm model(train, attack::make_linear_kernel());
  return attack::prediction_error(test, model.predict_all(test));
}

}  // namespace

int main() {
  util::print_banner(std::cout,
                     "Figure 10: model-building attack prediction error");
  const std::size_t test_n = bench::scaled(400, 200);
  std::vector<std::size_t> train_sizes{100, 200, 400, 800, 1600};
  if (util::bench_scale() >= 2.0) train_sizes.push_back(3200);
  const std::size_t pool = train_sizes.back() + test_n;

  util::Table t({"observed CRPs", "40-node PPUF (type-B)",
                 "40-node PPUF (full input)", "100-node PPUF (type-B)",
                 "arbiter (raw bits)", "arbiter (parity map)"});

  const attack::Dataset p40 = collect_ppuf_crps(40, pool, 424242);
  const attack::Dataset p40f = collect_ppuf_crps_full(40, pool, 424242);
  const attack::Dataset p100 = collect_ppuf_crps(100, pool, 101010);
  const attack::Dataset arb = collect_arbiter_crps(64, pool, 64064);

  for (const std::size_t n : train_sizes) {
    auto run = [&](const attack::Dataset& data) {
      const attack::Dataset train = data.slice(0, n);
      const attack::Dataset test = data.slice(data.size() - test_n, test_n);
      const auto curve = attack::attack_learning_curve(train, test, {n});
      return curve.front().best();
    };
    const double e40 = run(p40);
    const double e40f = run(p40f);
    const double e100 = run(p100);
    const double earb = run(arb);
    const double eparity = arbiter_parity_attack_error(64, n, 64064);
    t.add_row({std::to_string(n), util::Table::num(e40, 3),
               util::Table::num(e40f, 3), util::Table::num(e100, 3),
               util::Table::num(earb, 3), util::Table::num(eparity, 3)});
  }
  t.print(std::cout);
  bench::paper_note(
      "Fig. 10: PPUF prediction error stays an order of magnitude above "
      "the arbiter PUF's at every CRP budget (arbiter falls to ~1e-2..1e-3 "
      "by 10^4 CRPs).  The full-input column — the adversary sees the raw "
      "challenge lines including the source/sink selection — is the "
      "paper-faithful setting and plateaus high, like the paper's curves; "
      "the fixed-endpoint type-B-only setting is more learnable.");
  return 0;
}
