// Figure 9 reproduction: output-flip probability versus the Hamming
// distance d between two type-B challenges, on 40-node PPUFs with grid
// l = 8.  The paper samples 1000 input vectors on 100 PPUFs and finds the
// flip probability approaching 0.5 at d = 16 — the justification for
// restricting challenges to a minimum-distance-16 code.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "metrics/flip.hpp"
#include "ppuf/ppuf.hpp"

using namespace ppuf;

int main() {
  util::print_banner(
      std::cout, "Figure 9: output flip probability vs challenge distance");
  PpufParams params;
  params.node_count = 40;
  params.grid_size = 8;
  const std::size_t instances = bench::scaled(4, 2);
  const std::size_t pairs = bench::scaled(60, 30);
  const std::vector<std::size_t> distances{1, 2, 4, 6, 8, 10, 12, 14, 16, 18};

  std::vector<double> total(distances.size(), 0.0);
  std::vector<double> total_full(distances.size(), 0.0);
  for (std::size_t inst = 0; inst < instances; ++inst) {
    MaxFlowPpuf puf(params, 9100 + inst);
    util::Rng rng(inst * 31 + 1);
    const auto points =
        metrics::flip_probability_vs_distance(puf, distances, pairs, rng);
    const auto full = metrics::flip_probability_vs_distance_full_input(
        puf, distances, pairs, rng);
    for (std::size_t i = 0; i < points.size(); ++i) {
      total[i] += points[i].flip_probability;
      total_full[i] += full[i].flip_probability;
    }
  }

  // Reference: if the comparator margin were a separable sum of
  // independent per-cell contributions, flipping d of l^2 cells
  // re-randomises a d/l^2 fraction of its variance, giving
  // P(flip) = arccos(1 - d/l^2) / pi.  Measurements above this line
  // indicate nonlinear cross-edge coupling.
  const double cells = static_cast<double>(params.grid_size *
                                           params.grid_size);
  util::Table t({"min distance d", "type-B bits only",
                 "full input vector (incl. type-A)",
                 "separable-margin model (type-B)"});
  for (std::size_t i = 0; i < distances.size(); ++i) {
    const double rho =
        std::max(0.0, 1.0 - static_cast<double>(distances[i]) / cells);
    t.add_row({std::to_string(distances[i]),
               util::Table::num(total[i] / static_cast<double>(instances)),
               util::Table::num(total_full[i] /
                                static_cast<double>(instances)),
               util::Table::num(std::acos(rho) / 3.14159265358979, 4)});
  }
  t.print(std::cout);
  bench::paper_note(
      "rises from ~0.1 at d = 1 to ~0.5 at d = 16 (Fig. 9).  The physical "
      "challenge lines include the type-A source/sink selection; once those "
      "participate in the flipped 'inputs' (middle column), a single flip "
      "usually retargets the flow and the probability reaches ~0.5 by "
      "d = 16, matching the paper.  Restricted to type-B bits (left "
      "column) the curve instead tracks the separable-margin decorrelation "
      "bound (right column).");
  return 0;
}
