// Ablations of the design choices DESIGN.md calls out:
//   1. Channel-length-modulation strength (the SCE the SD technique
//      suppresses) vs simulation-model inaccuracy — why Requirement 2
//      matters for the *model*, not just the device.
//   2. Cascode headroom Vb vs the Requirement-2 variation/SCE ratio.
//   3. Grid size l vs flip probability at fixed d and CRP-space size —
//      the challenge-space design trade-off of Section 4.2.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/flip.hpp"
#include "ppuf/code.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "util/statistics.hpp"

using namespace ppuf;

namespace {

void ablate_lambda() {
  util::print_banner(
      std::cout,
      "Ablation 1: channel-length modulation vs model inaccuracy");
  util::Table t({"lambda [1/V]", "avg inaccuracy [%]", "max [%]"});
  for (const double lambda : {0.05, 0.15, 0.3, 0.6, 1.0}) {
    PpufParams params;
    params.node_count = 16;
    params.grid_size = 8;
    params.mosfet.lambda = lambda;
    MaxFlowPpuf puf(params, 333);
    SimulationModel model(puf);
    util::Rng rng(1);
    util::RunningStats err;
    for (int c = 0; c < 8; ++c) {
      const Challenge ch = random_challenge(puf.layout(), rng);
      const auto exe = puf.evaluate(ch);
      const auto sim = model.predict(ch);
      err.add(std::abs(exe.current_a - sim.flow_a) / exe.current_a);
      err.add(std::abs(exe.current_b - sim.flow_b) / exe.current_b);
    }
    t.add_row({util::Table::num(lambda, 2),
               util::Table::num(100 * err.mean(), 3),
               util::Table::num(100 * err.max(), 3)});
  }
  t.print(std::cout);
  std::cout << "(stronger SCE -> blocks deviate more from ideal "
               "capacity-limited edges -> the max-flow model degrades; "
               "this is what the SD suppression buys.)\n";
}

void ablate_vb() {
  util::print_banner(std::cout,
                     "Ablation 2: cascode headroom Vb vs Requirement 2");
  util::Table t({"Vb [V]", "sigma(Isat) [nA]", "mean SCE change [nA]",
                 "ratio"});
  for (const double vb : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
    PpufParams params;
    params.vb = vb;
    util::Rng rng(5);
    util::RunningStats isat, sce;
    const std::size_t draws = bench::scaled(60, 30);
    for (std::size_t i = 0; i < draws; ++i) {
      const auto var = circuit::draw_block_variation(params.variation, rng);
      const BlockCurve c = characterize_block(
          params, var, 1, circuit::Environment::nominal());
      isat.add(c.isat);
      sce.add(std::abs(c.iv(2.0) - c.iv(1.0)));
    }
    t.add_row({util::Table::num(vb, 2),
               util::Table::num(isat.stddev() * 1e9, 2),
               util::Table::num(sce.mean() * 1e9, 4),
               util::Table::num(isat.stddev() / sce.mean(), 1)});
  }
  t.print(std::cout);
  std::cout << "(too little headroom lets Vth variation knock the cascode "
               "out of saturation on outlier blocks, collapsing the "
               "variation/SCE ratio Requirement 2 demands.)\n";
}

void ablate_grid() {
  util::print_banner(
      std::cout, "Ablation 3: grid size l vs flip probability and CRP space");
  util::Table t({"l", "type-B bits", "flip prob at d=l*2",
                 "log10 N_CRP bound (n=40, d=2l)"});
  for (const std::size_t l : {4ul, 6ul, 8ul}) {
    PpufParams params;
    params.node_count = 24;
    params.grid_size = l;
    MaxFlowPpuf puf(params, 500 + l);
    util::Rng rng(l);
    const auto points = metrics::flip_probability_vs_distance(
        puf, {2 * l}, bench::scaled(50, 25), rng);
    const double bound =
        crp_space_lower_bound(40, l, 2 * l).to_double();
    t.add_row({std::to_string(l), std::to_string(l * l),
               util::Table::num(points[0].flip_probability),
               util::Table::num(std::log10(bound), 1)});
  }
  t.print(std::cout);
  std::cout << "(larger grids cost control wiring but expand the usable "
               "challenge space super-exponentially while keeping the "
               "flip probability near 0.5 at d = 2l.)\n";
}

void ablate_placement() {
  util::print_banner(
      std::cout,
      "Ablation 4: side-by-side placement vs systematic variation "
      "(Section 4.1)");
  // Crank the systematic surface so the effect is visible at bench scale,
  // then compare the paper's paired placement against a naive layout where
  // each network has its own die region.
  util::Table t({"placement", "sys. Vth ampl. [mV]",
                 "per-die |uniformity - 0.5|", "per-die |margin bias| [nA]"});
  for (const bool paired : {true, false}) {
    PpufParams params;
    params.node_count = 16;
    params.grid_size = 8;
    params.variation.systematic_vth_amplitude = 0.040;  // strong gradient
    params.paired_systematic_placement = paired;
    // Per-instance figures: the systematic gradient biases each die one
    // way or the other, so the telltale is the magnitude of the bias per
    // instance, not the population average (which cancels by symmetry).
    util::RunningStats skew;    // |uniformity - 0.5| per instance
    util::RunningStats margin;  // |mean margin| per instance
    const std::size_t instances = bench::scaled(8, 4);
    for (std::size_t i = 0; i < instances; ++i) {
      MaxFlowPpuf puf(params, 4400 + i);
      util::Rng rng(i + 1);
      double one_count = 0.0;
      const std::size_t challenges = 16;
      double margin_sum = 0.0;
      for (std::size_t c = 0; c < challenges; ++c) {
        const auto e =
            puf.evaluate(random_challenge(puf.layout(), rng));
        one_count += e.bit;
        margin_sum += e.current_a - e.current_b;
      }
      skew.add(std::abs(one_count / static_cast<double>(challenges) - 0.5));
      margin.add(std::abs(margin_sum / static_cast<double>(challenges)));
    }
    t.add_row({paired ? "paired (paper)" : "naive (separate regions)",
               util::Table::num(
                   params.variation.systematic_vth_amplitude * 1e3, 0),
               util::Table::num(skew.mean(), 3),
               util::Table::num(margin.mean() * 1e9, 1)});
  }
  t.print(std::cout);
  std::cout << "(with separate regions, each instance's systematic "
               "gradient shifts one whole network's currents — the "
               "comparator margin acquires a per-die bias and uniformity "
               "drifts from 0.5; side-by-side placement cancels it, as "
               "Section 4.1 argues.)\n";
}

}  // namespace

int main() {
  ablate_lambda();
  ablate_vb();
  ablate_grid();
  ablate_placement();
  return 0;
}
