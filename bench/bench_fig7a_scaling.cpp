// Figure 7(a) reproduction: asymptotic scaling of the simulation time
// (max-flow on the published instance) against the execution delay (analog
// settling), with power-law fits.
//
// Absolute times are machine-specific (the paper used a 2.93 GHz Xeon; the
// execution side is our transient simulation of the chip, reported in
// *circuit* time, not wall-clock).  The reproduced claim is the exponent
// gap: simulation grows super-linearly with a rising exponent, execution
// ~linearly (Section 3.3's O(n) bound).
#include <iostream>

#include "bench_common.hpp"
#include "graph/complete.hpp"
#include "maxflow/solver.hpp"
#include "ppuf/delay.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "util/fit.hpp"
#include "util/statistics.hpp"

using namespace ppuf;

int main() {
  util::print_banner(
      std::cout, "Figure 7(a): execution delay vs simulation time scaling");
  const int reps = static_cast<int>(bench::scaled(5, 3));

  // --- Execution side: settle time of the analog network, on real PPUF
  // instances (circuit time, not wall-clock), plus capacity statistics
  // used to extend the simulation workload beyond n = 100.
  const std::vector<std::size_t> exe_sizes{20, 40, 60, 80, 100};
  std::vector<double> ns_exe, t_exe, t_bound;
  double cap_mean = 0.0, cap_sigma = 0.0;
  util::Table texe({"nodes", "exe delay measured [us]",
                    "exe delay bound [us]"});
  for (const std::size_t n : exe_sizes) {
    PpufParams params;
    params.node_count = n;
    params.grid_size = 8;
    MaxFlowPpuf puf(params, 7000 + n);
    util::Rng rng(1);
    const Challenge ch = random_challenge(puf.layout(), rng);
    const double exe = measured_execution_delay(
        puf.network_a(), ch, circuit::Environment::nominal());
    const double bound = analytic_delay_bound(params, n);
    ns_exe.push_back(static_cast<double>(n));
    t_exe.push_back(exe);
    t_bound.push_back(bound);
    texe.add_row({std::to_string(n), util::Table::num(exe * 1e6, 4),
                  util::Table::num(bound * 1e6, 4)});
    if (n == 100) {
      SimulationModel model(puf);
      util::RunningStats caps;
      for (graph::EdgeId e = 0; e < puf.layout().edge_count(); ++e)
        caps.add(model.capacity(0, e, 0));
      cap_mean = caps.mean();
      cap_sigma = caps.stddev();
    }
  }
  texe.print(std::cout);

  // --- Simulation side: wall-clock max-flow time.  Up to n = 100 the
  // instance comes from a real PPUF's public model; beyond that, from the
  // same capacity distribution (mean/sigma measured above), because only
  // the workload shape matters for timing.
  const std::vector<std::size_t> sim_sizes{20, 40, 60, 80, 100,
                                           150, 200, 300, 400};
  std::vector<double> ns_sim, t_sim_pr, t_sim_ek;
  util::Table tsim({"nodes", "sim push-relabel [us]",
                    "sim augment-path [us]"});
  for (const std::size_t n : sim_sizes) {
    util::Rng rng(n);
    const graph::Digraph g =
        graph::make_complete(n, [&](graph::VertexId, graph::VertexId) {
          return std::max(cap_mean * 0.01,
                          cap_mean + cap_sigma * rng.gaussian());
        });
    const graph::FlowProblem problem{
        &g, 0, static_cast<graph::VertexId>(n - 1)};
    const auto pr = maxflow::make_solver(maxflow::Algorithm::kPushRelabel);
    const auto ek = maxflow::make_solver(maxflow::Algorithm::kEdmondsKarp);
    const double sim_pr =
        bench::time_seconds_median([&] { pr->solve(problem); }, reps);
    const double sim_ek =
        bench::time_seconds_median([&] { ek->solve(problem); }, reps);
    ns_sim.push_back(static_cast<double>(n));
    t_sim_pr.push_back(sim_pr);
    t_sim_ek.push_back(sim_ek);
    tsim.add_row({std::to_string(n), util::Table::num(sim_pr * 1e6, 2),
                  util::Table::num(sim_ek * 1e6, 2)});
  }
  tsim.print(std::cout);

  const util::PowerLaw sim_fit = util::fit_power_law(ns_sim, t_sim_pr);
  const util::PowerLaw sim_fit_ek = util::fit_power_law(ns_sim, t_sim_ek);
  const util::PowerLaw exe_fit = util::fit_power_law(ns_exe, t_exe);
  const util::PowerLaw bound_fit = util::fit_power_law(ns_exe, t_bound);
  std::cout << "fit: sim time (push-relabel) ~ " << sim_fit.to_string()
            << " s\n";
  std::cout << "fit: sim time (augmenting)   ~ " << sim_fit_ek.to_string()
            << " s\n";
  std::cout << "fit: exe delay measured      ~ " << exe_fit.to_string()
            << " s\n";
  std::cout << "fit: exe delay bound         ~ " << bound_fit.to_string()
            << " s (exactly linear by construction)\n";
  std::cout << "exponent gap (augmenting-path sim vs measured exe): "
            << util::Table::num(sim_fit_ek.b - exe_fit.b, 2) << "\n";
  bench::paper_note(
      "simulation fits a polynomial of degree >= 2 while execution delay "
      "is ~linear (Section 3.3 bounds it by O(n)); the widening gap is the "
      "ESG's engine.");
  return 0;
}
