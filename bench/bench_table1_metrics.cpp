// Table 1 reproduction: statistical PUF metrics (inter-class HD,
// intra-class HD, uniformity, randomness) for 40-node and 100-node PPUFs.
// Intra-class follows the paper's conditions: supply variation of 10% and
// temperature from -20 C to 80 C (plus comparator noise).
#include <iostream>

#include "bench_common.hpp"
#include "metrics/entropy.hpp"
#include "metrics/puf_metrics.hpp"
#include "ppuf/ppuf.hpp"

using namespace ppuf;

namespace {

void evaluate_size(std::size_t n, std::size_t instances,
                   std::size_t challenges) {
  PpufParams params;
  params.node_count = n;
  params.grid_size = 8;

  const CrossbarLayout layout(params.node_count, params.grid_size);
  util::Rng challenge_rng(41);
  std::vector<Challenge> cs;
  for (std::size_t i = 0; i < challenges; ++i)
    cs.push_back(random_challenge(layout, challenge_rng));

  const std::vector<circuit::Environment> stress_envs{
      {0.9, -20.0}, {1.1, 80.0}, {1.05, 50.0}};

  metrics::ResponseMatrix reference(instances);
  std::vector<metrics::ResponseMatrix> reevaluations(instances);
  util::Rng noise(77);
  for (std::size_t i = 0; i < instances; ++i) {
    MaxFlowPpuf puf(params, 1000 * n + i);
    for (const Challenge& c : cs)
      reference[i].push_back(static_cast<std::uint8_t>(puf.evaluate(c).bit));
    for (const circuit::Environment& env : stress_envs) {
      metrics::BitVector redo;
      for (const Challenge& c : cs)
        redo.push_back(
            static_cast<std::uint8_t>(puf.evaluate(c, env, &noise).bit));
      reevaluations[i].push_back(std::move(redo));
    }
  }

  const auto inter = metrics::inter_class_hd(reference);
  const auto intra = metrics::intra_class_hd(reference, reevaluations);
  const auto uni = metrics::uniformity(reference);
  const auto rnd = metrics::randomness(reference);

  std::cout << "\n" << n << "-node PPUF (" << instances << " instances x "
            << challenges << " challenges):\n";
  util::Table t({"metric", "ideal", "mean", "stdev"});
  t.add_row({"inter-class HD", "0.5", util::Table::num(inter.mean),
             util::Table::num(inter.stddev)});
  t.add_row({"intra-class HD", "0", util::Table::num(intra.mean),
             util::Table::num(intra.stddev)});
  t.add_row({"uniformity", "0.5", util::Table::num(uni.mean),
             util::Table::num(uni.stddev)});
  t.add_row({"randomness", "0.5", util::Table::num(rnd.mean),
             util::Table::num(rnd.stddev)});
  t.print(std::cout);
  std::cout << "entropy (extension): Shannon "
            << util::Table::num(metrics::shannon_entropy_per_bit(reference), 3)
            << " bit/bit, min-entropy "
            << util::Table::num(metrics::min_entropy_per_bit(reference), 3)
            << " bit/bit, mean pairwise MI "
            << util::Table::num(
                   metrics::mean_pairwise_mutual_information(reference), 4)
            << " bit\n";
}

}  // namespace

int main() {
  util::print_banner(std::cout, "Table 1: statistical evaluation");
  evaluate_size(40, bench::scaled(10, 6), bench::scaled(32, 16));
  evaluate_size(100, bench::scaled(6, 4), bench::scaled(24, 12));
  bench::paper_note(
      "40-node: inter 0.5009/0.1371, intra 0.0673/0.1104, uniformity "
      "0.4946/0.208, randomness 0.4946/0.0277; 100-node: inter "
      "0.4977/0.1075, intra 0.0853/0.1321, uniformity 0.4672/0.158, "
      "randomness 0.4672/0.0361.");
  return 0;
}
