# Empty dependencies file for ppuf_numeric.
# This may be replaced when dependencies are built.
