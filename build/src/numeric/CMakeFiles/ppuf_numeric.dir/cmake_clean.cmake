file(REMOVE_RECURSE
  "CMakeFiles/ppuf_numeric.dir/cholesky.cpp.o"
  "CMakeFiles/ppuf_numeric.dir/cholesky.cpp.o.d"
  "CMakeFiles/ppuf_numeric.dir/lu.cpp.o"
  "CMakeFiles/ppuf_numeric.dir/lu.cpp.o.d"
  "CMakeFiles/ppuf_numeric.dir/matrix.cpp.o"
  "CMakeFiles/ppuf_numeric.dir/matrix.cpp.o.d"
  "libppuf_numeric.a"
  "libppuf_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
