file(REMOVE_RECURSE
  "libppuf_numeric.a"
)
