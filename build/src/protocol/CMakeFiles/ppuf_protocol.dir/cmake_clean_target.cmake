file(REMOVE_RECURSE
  "libppuf_protocol.a"
)
