# Empty dependencies file for ppuf_protocol.
# This may be replaced when dependencies are built.
