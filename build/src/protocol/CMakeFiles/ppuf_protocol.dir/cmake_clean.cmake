file(REMOVE_RECURSE
  "CMakeFiles/ppuf_protocol.dir/authentication.cpp.o"
  "CMakeFiles/ppuf_protocol.dir/authentication.cpp.o.d"
  "libppuf_protocol.a"
  "libppuf_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
