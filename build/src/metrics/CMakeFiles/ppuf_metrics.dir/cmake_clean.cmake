file(REMOVE_RECURSE
  "CMakeFiles/ppuf_metrics.dir/entropy.cpp.o"
  "CMakeFiles/ppuf_metrics.dir/entropy.cpp.o.d"
  "CMakeFiles/ppuf_metrics.dir/flip.cpp.o"
  "CMakeFiles/ppuf_metrics.dir/flip.cpp.o.d"
  "CMakeFiles/ppuf_metrics.dir/hamming.cpp.o"
  "CMakeFiles/ppuf_metrics.dir/hamming.cpp.o.d"
  "CMakeFiles/ppuf_metrics.dir/puf_metrics.cpp.o"
  "CMakeFiles/ppuf_metrics.dir/puf_metrics.cpp.o.d"
  "CMakeFiles/ppuf_metrics.dir/reliability.cpp.o"
  "CMakeFiles/ppuf_metrics.dir/reliability.cpp.o.d"
  "libppuf_metrics.a"
  "libppuf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
