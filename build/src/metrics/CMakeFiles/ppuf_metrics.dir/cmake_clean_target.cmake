file(REMOVE_RECURSE
  "libppuf_metrics.a"
)
