
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/entropy.cpp" "src/metrics/CMakeFiles/ppuf_metrics.dir/entropy.cpp.o" "gcc" "src/metrics/CMakeFiles/ppuf_metrics.dir/entropy.cpp.o.d"
  "/root/repo/src/metrics/flip.cpp" "src/metrics/CMakeFiles/ppuf_metrics.dir/flip.cpp.o" "gcc" "src/metrics/CMakeFiles/ppuf_metrics.dir/flip.cpp.o.d"
  "/root/repo/src/metrics/hamming.cpp" "src/metrics/CMakeFiles/ppuf_metrics.dir/hamming.cpp.o" "gcc" "src/metrics/CMakeFiles/ppuf_metrics.dir/hamming.cpp.o.d"
  "/root/repo/src/metrics/puf_metrics.cpp" "src/metrics/CMakeFiles/ppuf_metrics.dir/puf_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/ppuf_metrics.dir/puf_metrics.cpp.o.d"
  "/root/repo/src/metrics/reliability.cpp" "src/metrics/CMakeFiles/ppuf_metrics.dir/reliability.cpp.o" "gcc" "src/metrics/CMakeFiles/ppuf_metrics.dir/reliability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppuf/CMakeFiles/ppuf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppuf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ppuf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/maxflow/CMakeFiles/ppuf_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppuf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/ppuf_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
