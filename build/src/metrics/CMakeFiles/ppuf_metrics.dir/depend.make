# Empty dependencies file for ppuf_metrics.
# This may be replaced when dependencies are built.
