file(REMOVE_RECURSE
  "libppuf_circuit.a"
)
