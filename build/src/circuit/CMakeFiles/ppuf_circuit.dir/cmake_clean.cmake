file(REMOVE_RECURSE
  "CMakeFiles/ppuf_circuit.dir/dc.cpp.o"
  "CMakeFiles/ppuf_circuit.dir/dc.cpp.o.d"
  "CMakeFiles/ppuf_circuit.dir/devices.cpp.o"
  "CMakeFiles/ppuf_circuit.dir/devices.cpp.o.d"
  "CMakeFiles/ppuf_circuit.dir/env.cpp.o"
  "CMakeFiles/ppuf_circuit.dir/env.cpp.o.d"
  "CMakeFiles/ppuf_circuit.dir/netlist.cpp.o"
  "CMakeFiles/ppuf_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/ppuf_circuit.dir/spice_export.cpp.o"
  "CMakeFiles/ppuf_circuit.dir/spice_export.cpp.o.d"
  "CMakeFiles/ppuf_circuit.dir/transient.cpp.o"
  "CMakeFiles/ppuf_circuit.dir/transient.cpp.o.d"
  "CMakeFiles/ppuf_circuit.dir/variation.cpp.o"
  "CMakeFiles/ppuf_circuit.dir/variation.cpp.o.d"
  "libppuf_circuit.a"
  "libppuf_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
