
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/dc.cpp" "src/circuit/CMakeFiles/ppuf_circuit.dir/dc.cpp.o" "gcc" "src/circuit/CMakeFiles/ppuf_circuit.dir/dc.cpp.o.d"
  "/root/repo/src/circuit/devices.cpp" "src/circuit/CMakeFiles/ppuf_circuit.dir/devices.cpp.o" "gcc" "src/circuit/CMakeFiles/ppuf_circuit.dir/devices.cpp.o.d"
  "/root/repo/src/circuit/env.cpp" "src/circuit/CMakeFiles/ppuf_circuit.dir/env.cpp.o" "gcc" "src/circuit/CMakeFiles/ppuf_circuit.dir/env.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/ppuf_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/ppuf_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/spice_export.cpp" "src/circuit/CMakeFiles/ppuf_circuit.dir/spice_export.cpp.o" "gcc" "src/circuit/CMakeFiles/ppuf_circuit.dir/spice_export.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/circuit/CMakeFiles/ppuf_circuit.dir/transient.cpp.o" "gcc" "src/circuit/CMakeFiles/ppuf_circuit.dir/transient.cpp.o.d"
  "/root/repo/src/circuit/variation.cpp" "src/circuit/CMakeFiles/ppuf_circuit.dir/variation.cpp.o" "gcc" "src/circuit/CMakeFiles/ppuf_circuit.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/ppuf_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
