# Empty compiler generated dependencies file for ppuf_circuit.
# This may be replaced when dependencies are built.
