
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maxflow/approximate.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/approximate.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/approximate.cpp.o.d"
  "/root/repo/src/maxflow/batch.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/batch.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/batch.cpp.o.d"
  "/root/repo/src/maxflow/dinic.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/dinic.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/dinic.cpp.o.d"
  "/root/repo/src/maxflow/edmonds_karp.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/edmonds_karp.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/edmonds_karp.cpp.o.d"
  "/root/repo/src/maxflow/multi_terminal.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/multi_terminal.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/multi_terminal.cpp.o.d"
  "/root/repo/src/maxflow/parallel_push_relabel.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/parallel_push_relabel.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/parallel_push_relabel.cpp.o.d"
  "/root/repo/src/maxflow/push_relabel.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/push_relabel.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/push_relabel.cpp.o.d"
  "/root/repo/src/maxflow/residual.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/residual.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/residual.cpp.o.d"
  "/root/repo/src/maxflow/solver.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/solver.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/solver.cpp.o.d"
  "/root/repo/src/maxflow/verify.cpp" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/verify.cpp.o" "gcc" "src/maxflow/CMakeFiles/ppuf_maxflow.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ppuf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
