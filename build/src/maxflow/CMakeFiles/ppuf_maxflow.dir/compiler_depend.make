# Empty compiler generated dependencies file for ppuf_maxflow.
# This may be replaced when dependencies are built.
