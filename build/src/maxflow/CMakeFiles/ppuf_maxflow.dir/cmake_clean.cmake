file(REMOVE_RECURSE
  "CMakeFiles/ppuf_maxflow.dir/approximate.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/approximate.cpp.o.d"
  "CMakeFiles/ppuf_maxflow.dir/batch.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/batch.cpp.o.d"
  "CMakeFiles/ppuf_maxflow.dir/dinic.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/dinic.cpp.o.d"
  "CMakeFiles/ppuf_maxflow.dir/edmonds_karp.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/edmonds_karp.cpp.o.d"
  "CMakeFiles/ppuf_maxflow.dir/multi_terminal.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/multi_terminal.cpp.o.d"
  "CMakeFiles/ppuf_maxflow.dir/parallel_push_relabel.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/parallel_push_relabel.cpp.o.d"
  "CMakeFiles/ppuf_maxflow.dir/push_relabel.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/push_relabel.cpp.o.d"
  "CMakeFiles/ppuf_maxflow.dir/residual.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/residual.cpp.o.d"
  "CMakeFiles/ppuf_maxflow.dir/solver.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/solver.cpp.o.d"
  "CMakeFiles/ppuf_maxflow.dir/verify.cpp.o"
  "CMakeFiles/ppuf_maxflow.dir/verify.cpp.o.d"
  "libppuf_maxflow.a"
  "libppuf_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
