file(REMOVE_RECURSE
  "libppuf_maxflow.a"
)
