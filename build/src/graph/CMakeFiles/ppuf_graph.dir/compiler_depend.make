# Empty compiler generated dependencies file for ppuf_graph.
# This may be replaced when dependencies are built.
