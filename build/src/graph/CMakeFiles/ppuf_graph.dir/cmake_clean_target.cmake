file(REMOVE_RECURSE
  "libppuf_graph.a"
)
