file(REMOVE_RECURSE
  "CMakeFiles/ppuf_graph.dir/bfs.cpp.o"
  "CMakeFiles/ppuf_graph.dir/bfs.cpp.o.d"
  "CMakeFiles/ppuf_graph.dir/complete.cpp.o"
  "CMakeFiles/ppuf_graph.dir/complete.cpp.o.d"
  "CMakeFiles/ppuf_graph.dir/digraph.cpp.o"
  "CMakeFiles/ppuf_graph.dir/digraph.cpp.o.d"
  "libppuf_graph.a"
  "libppuf_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
