file(REMOVE_RECURSE
  "CMakeFiles/ppuf_util.dir/bigint.cpp.o"
  "CMakeFiles/ppuf_util.dir/bigint.cpp.o.d"
  "CMakeFiles/ppuf_util.dir/fit.cpp.o"
  "CMakeFiles/ppuf_util.dir/fit.cpp.o.d"
  "CMakeFiles/ppuf_util.dir/statistics.cpp.o"
  "CMakeFiles/ppuf_util.dir/statistics.cpp.o.d"
  "CMakeFiles/ppuf_util.dir/table.cpp.o"
  "CMakeFiles/ppuf_util.dir/table.cpp.o.d"
  "libppuf_util.a"
  "libppuf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
