# Empty compiler generated dependencies file for ppuf_util.
# This may be replaced when dependencies are built.
