file(REMOVE_RECURSE
  "libppuf_util.a"
)
