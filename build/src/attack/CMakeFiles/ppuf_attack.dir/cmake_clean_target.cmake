file(REMOVE_RECURSE
  "libppuf_attack.a"
)
