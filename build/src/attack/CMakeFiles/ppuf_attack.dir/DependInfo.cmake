
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/dataset.cpp" "src/attack/CMakeFiles/ppuf_attack.dir/dataset.cpp.o" "gcc" "src/attack/CMakeFiles/ppuf_attack.dir/dataset.cpp.o.d"
  "/root/repo/src/attack/harness.cpp" "src/attack/CMakeFiles/ppuf_attack.dir/harness.cpp.o" "gcc" "src/attack/CMakeFiles/ppuf_attack.dir/harness.cpp.o.d"
  "/root/repo/src/attack/heuristic.cpp" "src/attack/CMakeFiles/ppuf_attack.dir/heuristic.cpp.o" "gcc" "src/attack/CMakeFiles/ppuf_attack.dir/heuristic.cpp.o.d"
  "/root/repo/src/attack/kernel.cpp" "src/attack/CMakeFiles/ppuf_attack.dir/kernel.cpp.o" "gcc" "src/attack/CMakeFiles/ppuf_attack.dir/kernel.cpp.o.d"
  "/root/repo/src/attack/knn.cpp" "src/attack/CMakeFiles/ppuf_attack.dir/knn.cpp.o" "gcc" "src/attack/CMakeFiles/ppuf_attack.dir/knn.cpp.o.d"
  "/root/repo/src/attack/lssvm.cpp" "src/attack/CMakeFiles/ppuf_attack.dir/lssvm.cpp.o" "gcc" "src/attack/CMakeFiles/ppuf_attack.dir/lssvm.cpp.o.d"
  "/root/repo/src/attack/svm_smo.cpp" "src/attack/CMakeFiles/ppuf_attack.dir/svm_smo.cpp.o" "gcc" "src/attack/CMakeFiles/ppuf_attack.dir/svm_smo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppuf/CMakeFiles/ppuf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/ppuf_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppuf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ppuf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/maxflow/CMakeFiles/ppuf_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppuf_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
