# Empty dependencies file for ppuf_attack.
# This may be replaced when dependencies are built.
