file(REMOVE_RECURSE
  "CMakeFiles/ppuf_attack.dir/dataset.cpp.o"
  "CMakeFiles/ppuf_attack.dir/dataset.cpp.o.d"
  "CMakeFiles/ppuf_attack.dir/harness.cpp.o"
  "CMakeFiles/ppuf_attack.dir/harness.cpp.o.d"
  "CMakeFiles/ppuf_attack.dir/heuristic.cpp.o"
  "CMakeFiles/ppuf_attack.dir/heuristic.cpp.o.d"
  "CMakeFiles/ppuf_attack.dir/kernel.cpp.o"
  "CMakeFiles/ppuf_attack.dir/kernel.cpp.o.d"
  "CMakeFiles/ppuf_attack.dir/knn.cpp.o"
  "CMakeFiles/ppuf_attack.dir/knn.cpp.o.d"
  "CMakeFiles/ppuf_attack.dir/lssvm.cpp.o"
  "CMakeFiles/ppuf_attack.dir/lssvm.cpp.o.d"
  "CMakeFiles/ppuf_attack.dir/svm_smo.cpp.o"
  "CMakeFiles/ppuf_attack.dir/svm_smo.cpp.o.d"
  "libppuf_attack.a"
  "libppuf_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
