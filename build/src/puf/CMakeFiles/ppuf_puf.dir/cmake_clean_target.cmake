file(REMOVE_RECURSE
  "libppuf_puf.a"
)
