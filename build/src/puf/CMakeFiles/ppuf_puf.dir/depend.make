# Empty dependencies file for ppuf_puf.
# This may be replaced when dependencies are built.
