file(REMOVE_RECURSE
  "CMakeFiles/ppuf_puf.dir/arbiter.cpp.o"
  "CMakeFiles/ppuf_puf.dir/arbiter.cpp.o.d"
  "libppuf_puf.a"
  "libppuf_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
