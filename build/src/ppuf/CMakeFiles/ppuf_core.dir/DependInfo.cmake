
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppuf/block.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/block.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/block.cpp.o.d"
  "/root/repo/src/ppuf/challenge.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/challenge.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/challenge.cpp.o.d"
  "/root/repo/src/ppuf/code.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/code.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/code.cpp.o.d"
  "/root/repo/src/ppuf/compact.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/compact.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/compact.cpp.o.d"
  "/root/repo/src/ppuf/crossbar.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/crossbar.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/crossbar.cpp.o.d"
  "/root/repo/src/ppuf/delay.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/delay.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/delay.cpp.o.d"
  "/root/repo/src/ppuf/feedback.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/feedback.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/feedback.cpp.o.d"
  "/root/repo/src/ppuf/keygen.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/keygen.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/keygen.cpp.o.d"
  "/root/repo/src/ppuf/network_solver.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/network_solver.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/network_solver.cpp.o.d"
  "/root/repo/src/ppuf/power.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/power.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/power.cpp.o.d"
  "/root/repo/src/ppuf/ppuf.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/ppuf.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/ppuf.cpp.o.d"
  "/root/repo/src/ppuf/sim_model.cpp" "src/ppuf/CMakeFiles/ppuf_core.dir/sim_model.cpp.o" "gcc" "src/ppuf/CMakeFiles/ppuf_core.dir/sim_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/ppuf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/maxflow/CMakeFiles/ppuf_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppuf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/ppuf_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
