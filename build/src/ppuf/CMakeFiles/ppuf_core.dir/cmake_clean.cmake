file(REMOVE_RECURSE
  "CMakeFiles/ppuf_core.dir/block.cpp.o"
  "CMakeFiles/ppuf_core.dir/block.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/challenge.cpp.o"
  "CMakeFiles/ppuf_core.dir/challenge.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/code.cpp.o"
  "CMakeFiles/ppuf_core.dir/code.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/compact.cpp.o"
  "CMakeFiles/ppuf_core.dir/compact.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/crossbar.cpp.o"
  "CMakeFiles/ppuf_core.dir/crossbar.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/delay.cpp.o"
  "CMakeFiles/ppuf_core.dir/delay.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/feedback.cpp.o"
  "CMakeFiles/ppuf_core.dir/feedback.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/keygen.cpp.o"
  "CMakeFiles/ppuf_core.dir/keygen.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/network_solver.cpp.o"
  "CMakeFiles/ppuf_core.dir/network_solver.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/power.cpp.o"
  "CMakeFiles/ppuf_core.dir/power.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/ppuf.cpp.o"
  "CMakeFiles/ppuf_core.dir/ppuf.cpp.o.d"
  "CMakeFiles/ppuf_core.dir/sim_model.cpp.o"
  "CMakeFiles/ppuf_core.dir/sim_model.cpp.o.d"
  "libppuf_core.a"
  "libppuf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
