file(REMOVE_RECURSE
  "libppuf_core.a"
)
