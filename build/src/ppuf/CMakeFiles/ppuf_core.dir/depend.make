# Empty dependencies file for ppuf_core.
# This may be replaced when dependencies are built.
