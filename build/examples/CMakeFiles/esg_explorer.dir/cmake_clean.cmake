file(REMOVE_RECURSE
  "CMakeFiles/esg_explorer.dir/esg_explorer.cpp.o"
  "CMakeFiles/esg_explorer.dir/esg_explorer.cpp.o.d"
  "esg_explorer"
  "esg_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
