# Empty dependencies file for esg_explorer.
# This may be replaced when dependencies are built.
