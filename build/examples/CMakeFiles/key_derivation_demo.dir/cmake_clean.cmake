file(REMOVE_RECURSE
  "CMakeFiles/key_derivation_demo.dir/key_derivation_demo.cpp.o"
  "CMakeFiles/key_derivation_demo.dir/key_derivation_demo.cpp.o.d"
  "key_derivation_demo"
  "key_derivation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_derivation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
