# Empty compiler generated dependencies file for key_derivation_demo.
# This may be replaced when dependencies are built.
