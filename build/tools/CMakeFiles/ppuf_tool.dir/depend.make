# Empty dependencies file for ppuf_tool.
# This may be replaced when dependencies are built.
