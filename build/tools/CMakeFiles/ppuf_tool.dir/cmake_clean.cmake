file(REMOVE_RECURSE
  "CMakeFiles/ppuf_tool.dir/ppuf_tool.cpp.o"
  "CMakeFiles/ppuf_tool.dir/ppuf_tool.cpp.o.d"
  "ppuf_tool"
  "ppuf_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
