file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_block_iv.dir/bench_fig3_block_iv.cpp.o"
  "CMakeFiles/bench_fig3_block_iv.dir/bench_fig3_block_iv.cpp.o.d"
  "bench_fig3_block_iv"
  "bench_fig3_block_iv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_block_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
