# Empty compiler generated dependencies file for bench_fig3_block_iv.
# This may be replaced when dependencies are built.
