file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_inaccuracy.dir/bench_fig6_inaccuracy.cpp.o"
  "CMakeFiles/bench_fig6_inaccuracy.dir/bench_fig6_inaccuracy.cpp.o.d"
  "bench_fig6_inaccuracy"
  "bench_fig6_inaccuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_inaccuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
