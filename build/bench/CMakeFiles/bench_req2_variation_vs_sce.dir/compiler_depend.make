# Empty compiler generated dependencies file for bench_req2_variation_vs_sce.
# This may be replaced when dependencies are built.
