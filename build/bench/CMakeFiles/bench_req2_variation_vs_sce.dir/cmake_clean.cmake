file(REMOVE_RECURSE
  "CMakeFiles/bench_req2_variation_vs_sce.dir/bench_req2_variation_vs_sce.cpp.o"
  "CMakeFiles/bench_req2_variation_vs_sce.dir/bench_req2_variation_vs_sce.cpp.o.d"
  "bench_req2_variation_vs_sce"
  "bench_req2_variation_vs_sce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_req2_variation_vs_sce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
