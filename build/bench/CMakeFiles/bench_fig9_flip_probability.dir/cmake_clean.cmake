file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_flip_probability.dir/bench_fig9_flip_probability.cpp.o"
  "CMakeFiles/bench_fig9_flip_probability.dir/bench_fig9_flip_probability.cpp.o.d"
  "bench_fig9_flip_probability"
  "bench_fig9_flip_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_flip_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
