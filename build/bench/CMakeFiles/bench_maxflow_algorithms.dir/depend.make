# Empty dependencies file for bench_maxflow_algorithms.
# This may be replaced when dependencies are built.
