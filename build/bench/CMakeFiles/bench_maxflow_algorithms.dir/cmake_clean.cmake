file(REMOVE_RECURSE
  "CMakeFiles/bench_maxflow_algorithms.dir/bench_maxflow_algorithms.cpp.o"
  "CMakeFiles/bench_maxflow_algorithms.dir/bench_maxflow_algorithms.cpp.o.d"
  "bench_maxflow_algorithms"
  "bench_maxflow_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maxflow_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
