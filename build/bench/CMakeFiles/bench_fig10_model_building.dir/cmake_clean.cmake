file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_model_building.dir/bench_fig10_model_building.cpp.o"
  "CMakeFiles/bench_fig10_model_building.dir/bench_fig10_model_building.cpp.o.d"
  "bench_fig10_model_building"
  "bench_fig10_model_building.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_model_building.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
