file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_esg.dir/bench_fig7b_esg.cpp.o"
  "CMakeFiles/bench_fig7b_esg.dir/bench_fig7b_esg.cpp.o.d"
  "bench_fig7b_esg"
  "bench_fig7b_esg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_esg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
