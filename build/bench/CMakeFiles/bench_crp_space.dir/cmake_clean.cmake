file(REMOVE_RECURSE
  "CMakeFiles/bench_crp_space.dir/bench_crp_space.cpp.o"
  "CMakeFiles/bench_crp_space.dir/bench_crp_space.cpp.o.d"
  "bench_crp_space"
  "bench_crp_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crp_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
