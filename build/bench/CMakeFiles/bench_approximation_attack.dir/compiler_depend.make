# Empty compiler generated dependencies file for bench_approximation_attack.
# This may be replaced when dependencies are built.
