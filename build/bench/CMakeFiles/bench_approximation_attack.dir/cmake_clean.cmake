file(REMOVE_RECURSE
  "CMakeFiles/bench_approximation_attack.dir/bench_approximation_attack.cpp.o"
  "CMakeFiles/bench_approximation_attack.dir/bench_approximation_attack.cpp.o.d"
  "bench_approximation_attack"
  "bench_approximation_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approximation_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
