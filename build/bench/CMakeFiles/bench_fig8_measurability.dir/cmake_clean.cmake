file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_measurability.dir/bench_fig8_measurability.cpp.o"
  "CMakeFiles/bench_fig8_measurability.dir/bench_fig8_measurability.cpp.o.d"
  "bench_fig8_measurability"
  "bench_fig8_measurability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_measurability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
