
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_measurability.cpp" "bench/CMakeFiles/bench_fig8_measurability.dir/bench_fig8_measurability.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_measurability.dir/bench_fig8_measurability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocol/CMakeFiles/ppuf_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/ppuf_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ppuf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/ppuf_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/ppuf/CMakeFiles/ppuf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ppuf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/maxflow/CMakeFiles/ppuf_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppuf_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/ppuf_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ppuf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
