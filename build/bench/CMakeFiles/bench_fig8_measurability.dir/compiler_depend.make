# Empty compiler generated dependencies file for bench_fig8_measurability.
# This may be replaced when dependencies are built.
