file(REMOVE_RECURSE
  "CMakeFiles/parallel_maxflow_test.dir/parallel_maxflow_test.cpp.o"
  "CMakeFiles/parallel_maxflow_test.dir/parallel_maxflow_test.cpp.o.d"
  "parallel_maxflow_test"
  "parallel_maxflow_test.pdb"
  "parallel_maxflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_maxflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
