# Empty dependencies file for parallel_maxflow_test.
# This may be replaced when dependencies are built.
