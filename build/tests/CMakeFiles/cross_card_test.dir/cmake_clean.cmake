file(REMOVE_RECURSE
  "CMakeFiles/cross_card_test.dir/cross_card_test.cpp.o"
  "CMakeFiles/cross_card_test.dir/cross_card_test.cpp.o.d"
  "cross_card_test"
  "cross_card_test.pdb"
  "cross_card_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_card_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
