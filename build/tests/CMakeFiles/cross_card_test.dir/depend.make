# Empty dependencies file for cross_card_test.
# This may be replaced when dependencies are built.
