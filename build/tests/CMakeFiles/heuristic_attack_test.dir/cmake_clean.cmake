file(REMOVE_RECURSE
  "CMakeFiles/heuristic_attack_test.dir/heuristic_attack_test.cpp.o"
  "CMakeFiles/heuristic_attack_test.dir/heuristic_attack_test.cpp.o.d"
  "heuristic_attack_test"
  "heuristic_attack_test.pdb"
  "heuristic_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
