# Empty dependencies file for batch_entropy_test.
# This may be replaced when dependencies are built.
