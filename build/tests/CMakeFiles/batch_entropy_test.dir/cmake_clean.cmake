file(REMOVE_RECURSE
  "CMakeFiles/batch_entropy_test.dir/batch_entropy_test.cpp.o"
  "CMakeFiles/batch_entropy_test.dir/batch_entropy_test.cpp.o.d"
  "batch_entropy_test"
  "batch_entropy_test.pdb"
  "batch_entropy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_entropy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
