# Empty dependencies file for network_solver_test.
# This may be replaced when dependencies are built.
