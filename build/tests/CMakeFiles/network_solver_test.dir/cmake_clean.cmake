file(REMOVE_RECURSE
  "CMakeFiles/network_solver_test.dir/network_solver_test.cpp.o"
  "CMakeFiles/network_solver_test.dir/network_solver_test.cpp.o.d"
  "network_solver_test"
  "network_solver_test.pdb"
  "network_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
