file(REMOVE_RECURSE
  "CMakeFiles/maxflow_test.dir/maxflow_test.cpp.o"
  "CMakeFiles/maxflow_test.dir/maxflow_test.cpp.o.d"
  "maxflow_test"
  "maxflow_test.pdb"
  "maxflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
