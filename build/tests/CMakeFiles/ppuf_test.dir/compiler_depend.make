# Empty compiler generated dependencies file for ppuf_test.
# This may be replaced when dependencies are built.
