file(REMOVE_RECURSE
  "CMakeFiles/ppuf_test.dir/ppuf_test.cpp.o"
  "CMakeFiles/ppuf_test.dir/ppuf_test.cpp.o.d"
  "ppuf_test"
  "ppuf_test.pdb"
  "ppuf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppuf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
