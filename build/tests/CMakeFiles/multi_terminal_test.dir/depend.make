# Empty dependencies file for multi_terminal_test.
# This may be replaced when dependencies are built.
