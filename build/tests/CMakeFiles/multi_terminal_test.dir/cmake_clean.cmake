file(REMOVE_RECURSE
  "CMakeFiles/multi_terminal_test.dir/multi_terminal_test.cpp.o"
  "CMakeFiles/multi_terminal_test.dir/multi_terminal_test.cpp.o.d"
  "multi_terminal_test"
  "multi_terminal_test.pdb"
  "multi_terminal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_terminal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
