# Empty compiler generated dependencies file for full_input_test.
# This may be replaced when dependencies are built.
