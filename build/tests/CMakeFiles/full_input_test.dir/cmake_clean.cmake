file(REMOVE_RECURSE
  "CMakeFiles/full_input_test.dir/full_input_test.cpp.o"
  "CMakeFiles/full_input_test.dir/full_input_test.cpp.o.d"
  "full_input_test"
  "full_input_test.pdb"
  "full_input_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_input_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
