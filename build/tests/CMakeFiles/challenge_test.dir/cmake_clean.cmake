file(REMOVE_RECURSE
  "CMakeFiles/challenge_test.dir/challenge_test.cpp.o"
  "CMakeFiles/challenge_test.dir/challenge_test.cpp.o.d"
  "challenge_test"
  "challenge_test.pdb"
  "challenge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/challenge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
