# Empty compiler generated dependencies file for challenge_test.
# This may be replaced when dependencies are built.
