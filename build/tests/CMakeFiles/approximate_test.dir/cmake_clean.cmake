file(REMOVE_RECURSE
  "CMakeFiles/approximate_test.dir/approximate_test.cpp.o"
  "CMakeFiles/approximate_test.dir/approximate_test.cpp.o.d"
  "approximate_test"
  "approximate_test.pdb"
  "approximate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
