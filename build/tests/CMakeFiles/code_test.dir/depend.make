# Empty dependencies file for code_test.
# This may be replaced when dependencies are built.
