file(REMOVE_RECURSE
  "CMakeFiles/code_test.dir/code_test.cpp.o"
  "CMakeFiles/code_test.dir/code_test.cpp.o.d"
  "code_test"
  "code_test.pdb"
  "code_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
