# Empty dependencies file for spice_keygen_test.
# This may be replaced when dependencies are built.
