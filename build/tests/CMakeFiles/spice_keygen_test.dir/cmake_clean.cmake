file(REMOVE_RECURSE
  "CMakeFiles/spice_keygen_test.dir/spice_keygen_test.cpp.o"
  "CMakeFiles/spice_keygen_test.dir/spice_keygen_test.cpp.o.d"
  "spice_keygen_test"
  "spice_keygen_test.pdb"
  "spice_keygen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_keygen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
