// Time-bound authentication demo (the application Section 1 motivates):
//
//   1. The verifier holds only the PUBLIC model and issues a random
//      challenge with a response deadline.
//   2. The genuine holder executes the PPUF (chip-speed, here the modelled
//      analog settle time) and returns the response with its per-edge flow
//      claims.
//   3. The verifier checks the claims with the cheap residual-graph test —
//      it never solves max-flow itself.
//   4. An impersonator who only has the public model must *simulate*
//      max-flow; its wall-clock time is measured and misses the deadline.
//
//   ./authentication_demo [nodes]   (default 24)
#include <cstdlib>
#include <iostream>

#include "ppuf/delay.hpp"
#include "protocol/authentication.hpp"

int main(int argc, char** argv) {
  using namespace ppuf;

  PpufParams params;
  params.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  params.grid_size = 8;

  std::cout << "Setup: fabricating a " << params.node_count
            << "-node PPUF and publishing its model...\n";
  MaxFlowPpuf puf(params, 77);
  SimulationModel model(puf);

  // Flow tolerance for the analog claims: a few percent of a typical edge
  // capacity (Fig. 6's <1% model inaccuracy fits comfortably inside).
  double mean_cap = 0.0;
  for (graph::EdgeId e = 0; e < puf.layout().edge_count(); ++e)
    mean_cap += model.capacity(0, e, 0);
  mean_cap /= static_cast<double>(puf.layout().edge_count());

  const double chip_delay =
      analytic_delay_bound(params, params.node_count);

  util::Rng rng(9);

  // Measure the impersonator once to place the deadline between the two
  // (in deployment the verifier derives it from the max-flow lower bound).
  const Challenge probe = random_challenge(puf.layout(), rng);
  const double simulator_time =
      protocol::prove_by_simulation(model, probe).elapsed_seconds;
  const double deadline = std::sqrt(chip_delay * simulator_time);

  const protocol::Verifier verifier(model, deadline, 0.05 * mean_cap);
  std::cout << "Deadline: " << deadline * 1e6 << " us  (chip needs ~"
            << chip_delay * 1e6 << " us, simulator needs ~"
            << simulator_time * 1e6 << " us)\n\n";

  const Challenge challenge = verifier.issue_challenge(rng);

  std::cout << "[genuine holder] executing the PPUF...\n";
  const protocol::ProverReport honest =
      protocol::prove_with_ppuf(puf, challenge, chip_delay);
  const protocol::AuthenticationResult r1 =
      verifier.verify(challenge, honest);
  std::cout << "  -> " << (r1.accepted ? "ACCEPTED" : "REJECTED")
            << (r1.detail.empty() ? "" : " (" + r1.detail + ")") << "\n\n";

  std::cout << "[impersonator] simulating max-flow from the public model "
               "(wall-clock measured)...\n";
  const protocol::ProverReport attacker =
      protocol::prove_by_simulation(model, challenge);
  const protocol::AuthenticationResult r2 =
      verifier.verify(challenge, attacker);
  std::cout << "  -> " << (r2.accepted ? "ACCEPTED" : "REJECTED")
            << (r2.detail.empty() ? "" : " (" + r2.detail + ")")
            << "  [took " << attacker.elapsed_seconds * 1e6 << " us]\n\n";

  std::cout << "The impersonator's answer is *correct* — the model is "
               "public — but late.  At deployment scale (hundreds of "
               "nodes, feedback chains) the gap is seconds vs "
               "microseconds; see bench_fig7b_esg.\n";
  return r1.accepted && !r2.accepted ? 0 : 1;
}
