// Quickstart: fabricate a max-flow PPUF, publish its model, evaluate a
// challenge on "silicon" and by simulation, and confirm the two agree —
// the whole point of a *public* PUF in ~40 lines.
//
//   ./quickstart [nodes]        (default 16)
#include <cstdlib>
#include <iostream>

#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"

int main(int argc, char** argv) {
  using namespace ppuf;

  PpufParams params;
  params.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  params.grid_size = std::min<std::size_t>(8, params.node_count / 2);

  std::cout << "Fabricating a " << params.node_count
            << "-node max-flow PPUF (two crossbar networks, "
            << 2 * params.node_count * (params.node_count - 1)
            << " source-degenerated blocks)...\n";
  MaxFlowPpuf puf(params, /*seed=*/2016);

  std::cout << "Extracting the public model (per-block saturation currents "
               "= edge capacities)...\n";
  SimulationModel model(puf);

  util::Rng rng(1);
  const Challenge challenge = random_challenge(puf.layout(), rng);
  std::cout << "\nChallenge: source node " << challenge.source
            << ", sink node " << challenge.sink << ", "
            << challenge.bits.size() << " control bits\n";

  const auto execution = puf.evaluate(challenge);
  std::cout << "Execution (analog steady state):  I_A = "
            << execution.current_a * 1e9 << " nA, I_B = "
            << execution.current_b * 1e9 << " nA  ->  response bit "
            << execution.bit << "\n";

  const auto simulation = model.predict(challenge);
  std::cout << "Simulation (max-flow on model):   F_A = "
            << simulation.flow_a * 1e9 << " nA, F_B = "
            << simulation.flow_b * 1e9 << " nA  ->  predicted bit "
            << simulation.bit << "\n";

  const double err =
      std::abs(execution.current_a - simulation.flow_a) / execution.current_a;
  std::cout << "\nCircuit executes the max-flow computation to within "
            << err * 100.0 << "% — the simulation model is faithful, and "
            << "the PPUF's security rests only on how *long* that "
            << "simulation takes (the execution-simulation gap).\n";
  return simulation.bit == execution.bit ? 0 : 1;
}
