// Model-building attack demo: an adversary observes CRPs from a PPUF and
// tries to learn a clone with kernel SVMs and KNN (the Fig. 10 experiment,
// at demo scale), next to the classic arbiter-PUF baseline that such
// attacks famously destroy.
//
//   ./modeling_attack_demo [nodes] [max CRPs]   (default 24, 800)
#include <cstdlib>
#include <iostream>

#include "attack/harness.hpp"
#include "attack/lssvm.hpp"
#include "ppuf/ppuf.hpp"
#include "puf/arbiter.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppuf;

  PpufParams params;
  params.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  params.grid_size = 8;
  const std::size_t max_crps =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 800;
  const std::size_t test_n = 300;

  std::cout << "Collecting " << max_crps + test_n << " CRPs from a "
            << params.node_count << "-node PPUF (fixed source/sink, 64 "
            << "control bits)...\n";
  MaxFlowPpuf puf(params, 1234);
  util::Rng rng(5);
  std::vector<std::vector<std::uint8_t>> challenges;
  std::vector<int> responses;
  for (std::size_t i = 0; i < max_crps + test_n; ++i) {
    const Challenge c = random_challenge_fixed_ends(puf.layout(), 0, 1, rng);
    challenges.emplace_back(c.bits.begin(), c.bits.end());
    responses.push_back(puf.evaluate(c).bit);
  }
  const attack::Dataset data = attack::encode_bits(challenges, responses);
  const attack::Dataset test = data.slice(max_crps, test_n);

  util::Table t({"CRPs", "LS-SVM (RBF)", "SMO-SVM (RBF)", "best KNN",
                 "best"});
  for (std::size_t n = 100; n <= max_crps; n *= 2) {
    const attack::Dataset train = data.slice(0, n);
    const auto curve = attack::attack_learning_curve(train, test, {n});
    const auto& e = curve.front();
    t.add_row({std::to_string(n), util::Table::num(e.lssvm_rbf, 3),
               util::Table::num(e.smo_rbf, 3), util::Table::num(e.knn, 3),
               util::Table::num(e.best(), 3)});
  }
  t.print(std::cout);

  // Baseline: the arbiter PUF with the strongest known attack (linear
  // learner on parity features) collapses with the same budget.
  const puf::ArbiterPuf arbiter(64, 99);
  util::Rng arng(6);
  auto make = [&](std::size_t count) {
    std::vector<std::vector<double>> feats;
    std::vector<int> resp;
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<std::uint8_t> c(64);
      for (auto& b : c) b = arng.coin() ? 1 : 0;
      feats.push_back(puf::ArbiterPuf::parity_features(c));
      resp.push_back(arbiter.evaluate(c));
    }
    return attack::from_features(std::move(feats), std::move(resp));
  };
  const std::size_t arb_budget = std::max<std::size_t>(2000, max_crps);
  const attack::LsSvm clone(make(arb_budget), attack::make_linear_kernel());
  const attack::Dataset arb_test = make(test_n);
  std::cout << "\narbiter PUF (64 stages) under the parity-feature attack, "
            << arb_budget << " CRPs: error "
            << attack::prediction_error(arb_test,
                                        clone.predict_all(arb_test))
            << " — effectively cloned.\nThe PPUF's nonlinear response "
               "boundary (Requirement 3) keeps every attacker far above "
               "that; see bench_fig10_model_building for the full curves.\n";
  return 0;
}
