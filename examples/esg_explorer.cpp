// ESG explorer: for a design size n, print everything a deployer would
// want to know — execution delay, simulation time on *this* machine,
// the resulting execution-simulation gap with and without the feedback
// loop, the CRP space, and the power budget.
//
//   ./esg_explorer [nodes] [grid l] [loop k]   (default 40 8 n)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "maxflow/solver.hpp"
#include "ppuf/code.hpp"
#include "ppuf/delay.hpp"
#include "ppuf/power.hpp"
#include "ppuf/ppuf.hpp"
#include "ppuf/sim_model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppuf;
  using clock = std::chrono::steady_clock;

  PpufParams params;
  params.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
  params.grid_size = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const std::size_t k =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : params.node_count;

  std::cout << "=== Max-flow PPUF design point: n = " << params.node_count
            << ", l = " << params.grid_size << ", feedback k = " << k
            << " ===\n\n";

  MaxFlowPpuf puf(params, 4040);
  SimulationModel model(puf);
  util::Rng rng(3);
  const Challenge ch = random_challenge(puf.layout(), rng);

  // Simulation time on this machine (both networks, push-relabel).
  const auto solver = maxflow::make_solver(maxflow::Algorithm::kPushRelabel);
  const auto t0 = clock::now();
  for (int net = 0; net < 2; ++net) {
    const graph::Digraph g = model.build_graph(net, ch);
    solver->solve({&g, ch.source, ch.sink});
  }
  const double t_sim =
      std::chrono::duration<double>(clock::now() - t0).count();

  const double t_exe = analytic_delay_bound(params, params.node_count);
  const auto eval = puf.evaluate(ch);
  const PowerEstimate power = estimate_power(
      params, 0.5 * (eval.current_a + eval.current_b), t_exe);

  util::Table t({"quantity", "value"});
  t.add_row({"execution delay (chip, bound)",
             util::Table::sci(t_exe) + " s"});
  t.add_row({"simulation time (this machine)",
             util::Table::sci(t_sim) + " s"});
  t.add_row({"ESG, single challenge", util::Table::sci(t_sim - t_exe) + " s"});
  t.add_row({"ESG, feedback chain of " + std::to_string(k),
             util::Table::sci(static_cast<double>(k) * (t_sim - t_exe)) +
                 " s"});
  t.add_row({"avg output current",
             util::Table::num(0.5 * (eval.current_a + eval.current_b) * 1e6,
                              3) +
                 " uA"});
  t.add_row({"total power", util::Table::num(power.total_power * 1e6, 1) +
                                " uW"});
  t.add_row({"energy per evaluation",
             util::Table::num(power.energy_per_eval * 1e12, 1) + " pJ"});
  const auto n_crp = crp_space_lower_bound(params.node_count,
                                           params.grid_size,
                                           2 * params.grid_size);
  t.add_row({"CRP space (min-HD d = 2l)",
             ">= " + util::Table::sci(n_crp.to_double(), 2)});
  t.print(std::cout);

  std::cout << "\n(simulation cost scales ~n^2+ while the chip scales ~n: "
               "grow n until the chained ESG covers your authentication "
               "round-trip budget.)\n";
  return 0;
}
