// Key derivation demo: turn a PPUF into device-unique key material with
// majority voting, check its stability across the Table-1 environmental
// corners, and report the population entropy of the derived bits.
//
//   ./key_derivation_demo [nodes] [key bits]   (default 16, 64)
#include <cstdlib>
#include <iostream>

#include "metrics/entropy.hpp"
#include "ppuf/keygen.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppuf;

  PpufParams params;
  params.node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  params.grid_size = std::min<std::size_t>(8, params.node_count / 2);
  KeyDerivationOptions opts;
  opts.bits = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  opts.votes = 5;

  std::cout << "Deriving " << opts.bits << "-bit keys (5-vote majority) "
            << "from " << params.node_count << "-node PPUFs...\n\n";

  // One device, several conditions.
  MaxFlowPpuf device(params, 1001);
  util::Rng noise(1);
  const auto nominal = derive_key(device, opts, noise);

  util::Table t({"condition", "key mismatch vs nominal"});
  for (const auto& [label, env] :
       {std::pair{"re-derivation (same conditions)",
                  circuit::Environment{1.0, 27.0}},
        std::pair{"VDD -10%, -20 C", circuit::Environment{0.9, -20.0}},
        std::pair{"VDD +10%, +80 C", circuit::Environment{1.1, 80.0}}}) {
    const auto redo = derive_key(device, opts, noise, env);
    t.add_row({label, util::Table::num(key_mismatch_rate(nominal, redo), 4)});
  }
  t.print(std::cout);
  std::cout << "(residual mismatches are what a fuzzy extractor's error "
               "correction absorbs.)\n\n";

  // A small population, for uniqueness and entropy.
  const std::size_t population = 8;
  metrics::ResponseMatrix keys;
  for (std::size_t i = 0; i < population; ++i) {
    MaxFlowPpuf dev(params, 2000 + i);
    util::Rng n2(i);
    keys.push_back(derive_key(dev, opts, n2));
  }
  std::cout << population << "-device population:  Shannon entropy "
            << util::Table::num(metrics::shannon_entropy_per_bit(keys), 3)
            << " bit/bit,  min-entropy "
            << util::Table::num(metrics::min_entropy_per_bit(keys), 3)
            << " bit/bit,  inter-device HD "
            << util::Table::num(metrics::inter_class_hd(keys).mean, 3)
            << "\n";
  std::cout << "\nNote: a PUBLIC PUF's key can be simulated by anyone with "
               "the model — slowly.  Use PPUF keys where physical presence "
               "within the ESG time window is the security property, or "
               "keep the model private to get a classic strong PUF.\n";
  return 0;
}
